//! `fascia report` — one unified view over a run directory's artifacts.
//!
//! Ingestion lives here in the CLI; presentation is
//! [`fascia_obs::Report`]. The subcommand scans a directory
//! (non-recursive) for the repo's observability documents, classifies
//! each file by its `"schema"` tag — `fascia-obs/1`, `fascia-mem/1`,
//! `fascia-est/1`, `fascia-perf/1`, `fascia-heartbeat/1`,
//! `fascia-ckpt/1` — or by shape
//! (Chrome trace-event arrays, `*.collapsed` profiles), and renders one
//! aligned terminal view plus one self-contained HTML file.
//!
//! With `--baseline BENCH.json` the perf section diffs each benchmark's
//! median against the archived `fascia-perf/1` document (median ratio
//! against the record's own threshold — the statistical Mann–Whitney gate
//! stays in `fascia-bench`; the report is a readable overview, not a CI
//! gate).
//!
//! When the directory is (or contains) a service spool — an
//! `events/events.jsonl` (or bare `events.jsonl`) `fascia-events/1` log —
//! a Service section is added: the per-job table folded from the event
//! stream, retry causes, and queue-wait / end-to-end latency quantiles.

use crate::{flag_value, usage_err, CliError, EXIT_OK};
use fascia_core::resilience::{atomic_write, Json};
use fascia_obs::{Report, Section, TableView};
use std::path::{Path, PathBuf};

/// Everything recognized in the run directory, file order sorted by name.
#[derive(Default)]
struct Artifacts {
    obs: Vec<(String, Json)>,
    mem: Vec<(String, Json)>,
    est: Vec<(String, Json)>,
    perf: Vec<(String, Json)>,
    /// `fascia-svc-report/1` service summaries (saved `serve` stdout).
    svc: Vec<(String, Json)>,
    heartbeat: Vec<(String, Json)>,
    checkpoints: Vec<String>,
    /// Chrome trace files: name and event count.
    traces: Vec<(String, usize)>,
    /// Collapsed-stack profiles: name and contents.
    profiles: Vec<(String, String)>,
    skipped: Vec<String>,
}

pub(crate) fn cmd_report(rest: &[String]) -> Result<i32, CliError> {
    let Some(dir) = rest.first().filter(|d| !d.starts_with("--")) else {
        return Err(usage_err("report needs <run-dir>"));
    };
    let mut baseline: Option<PathBuf> = None;
    let mut html_out: Option<PathBuf> = None;
    let mut no_html = false;
    let flags = &rest[1..];
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(flag_value(flags, i, "--baseline")?));
                i += 2;
            }
            "--html" => {
                html_out = Some(PathBuf::from(flag_value(flags, i, "--html")?));
                i += 2;
            }
            "--no-html" => {
                no_html = true;
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown report flag '{other}'"))),
        }
    }
    let dir = Path::new(dir);
    let arts = ingest_dir(dir)?;
    let baseline_doc = baseline
        .as_deref()
        .map(|p| {
            let text = std::fs::read_to_string(p).map_err(|e| {
                CliError::Io(format!("cannot read baseline '{}': {e}", p.display()))
            })?;
            let v = Json::parse(&text).map_err(|e| {
                CliError::Io(format!("baseline '{}' is not JSON: {e:?}", p.display()))
            })?;
            if schema_of(&v) != Some("fascia-perf/1") {
                return Err(CliError::Io(format!(
                    "baseline '{}' is not a fascia-perf/1 document",
                    p.display()
                )));
            }
            Ok(v)
        })
        .transpose()?;
    let report = build_report(dir, &arts, baseline_doc.as_ref());
    print!("{}", report.render_terminal());
    if !no_html {
        let path = html_out.unwrap_or_else(|| dir.join("report.html"));
        atomic_write(&path, &report.render_html())
            .map_err(|e| CliError::Io(format!("cannot write '{}': {e}", path.display())))?;
        eprintln!("report: html -> {}", path.display());
    }
    Ok(EXIT_OK)
}

/// The `"schema"` tag of a parsed document, when it is a tagged object.
fn schema_of(v: &Json) -> Option<&str> {
    Json::get(v.as_obj()?, "schema").and_then(Json::as_str)
}

fn ingest_dir(dir: &Path) -> Result<Artifacts, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError::Io(format!("cannot read directory '{}': {e}", dir.display())))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    let mut arts = Artifacts::default();
    for name in names {
        let path = dir.join(&name);
        if name.ends_with(".collapsed") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                arts.profiles.push((name, text));
            }
            continue;
        }
        if !name.ends_with(".json") {
            continue; // report.html, logs, edge lists — not ours to read.
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            arts.skipped.push(name);
            continue;
        };
        let Ok(v) = Json::parse(&text) else {
            arts.skipped.push(name);
            continue;
        };
        match schema_of(&v) {
            Some("fascia-obs/1") => arts.obs.push((name, v)),
            Some("fascia-mem/1") => arts.mem.push((name, v)),
            Some("fascia-est/1") => arts.est.push((name, v)),
            Some("fascia-svc-report/1") => arts.svc.push((name, v)),
            Some("fascia-perf/1") => arts.perf.push((name, v)),
            Some("fascia-heartbeat/1") => arts.heartbeat.push((name, v)),
            Some("fascia-ckpt/1") => arts.checkpoints.push(name),
            Some(_) => arts.skipped.push(name),
            // Chrome trace-event exports are a top-level array.
            None if v.as_arr().is_some() => {
                let events = v.as_arr().map(<[Json]>::len).unwrap_or(0);
                arts.traces.push((name, events));
            }
            None => arts.skipped.push(name),
        }
    }
    // A spool directory keeps per-job estimate traces in est/ the same
    // way it keeps the event log in events/ — fold those in so
    // `fascia report <spool>` renders a service run's convergence.
    let est_dir = dir.join("est");
    if let Ok(entries) = std::fs::read_dir(&est_dir) {
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            let Ok(text) = std::fs::read_to_string(est_dir.join(&name)) else {
                continue;
            };
            let Ok(v) = Json::parse(&text) else { continue };
            if schema_of(&v) == Some("fascia-est/1") {
                arts.est.push((format!("est/{name}"), v));
            }
        }
    }
    Ok(arts)
}

fn build_report(dir: &Path, arts: &Artifacts, baseline: Option<&Json>) -> Report {
    let mut report = Report::new(format!("fascia run report — {}", dir.display()));
    report.push_section(overview_section(arts));
    if let Some((name, doc)) = arts.mem.last() {
        report.push_section(allocator_section(name, doc));
        report.push_section(tables_section(doc));
    }
    if let Some((name, doc)) = arts.obs.last() {
        report.push_section(metrics_section(name, doc));
    }
    if let Some((name, doc)) = arts.est.last() {
        report.push_section(estimator_section(name, doc));
    }
    if !arts.perf.is_empty() {
        report.push_section(perf_section(&arts.perf, baseline));
    }
    if let Some((name, doc)) = arts.heartbeat.last() {
        report.push_section(scalar_section("Run status", name, doc));
    }
    if !arts.profiles.is_empty() {
        report.push_section(profile_section(&arts.profiles));
    }
    // A spool directory (or a copy of one) carries the service event log.
    if let Some(path) = [
        dir.join("events").join("events.jsonl"),
        dir.join("events.jsonl"),
    ]
    .into_iter()
    .find(|p| p.exists())
    {
        report.push_section(service_section(&path, arts.svc.last()));
    }
    report
}

/// The service section: job table, retry causes, and latency quantiles
/// recovered from a `fascia-events/1` lifecycle log.
fn service_section(path: &Path, summary: Option<&(String, Json)>) -> Section {
    use fascia_svc::events::{job_table, latency_histograms, read_events, retry_causes};
    let mut s = Section::new("Service");
    s.line(format!("source: {}", path.display()));
    // Telemetry-loss counters from a saved fascia-svc-report/1 summary:
    // lifecycle events the log failed to append, and trace-ring events
    // the attempts' rings dropped when full.
    if let Some((name, doc)) = summary {
        let g = |k: &str| {
            doc.as_obj()
                .and_then(|o| Json::get(o, k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        s.line(format!(
            "telemetry loss ({name}): {} event-log write failures, {} trace-ring events dropped",
            g("events_write_failures"),
            g("trace_events_dropped"),
        ));
    }
    let events = read_events(path);
    if events.is_empty() {
        s.line("event log is empty");
        return s;
    }
    s.line(format!(
        "{} lifecycle events (fascia-events/1)",
        events.len()
    ));
    let mut t = TableView::new(["job", "state", "attempts", "retries", "cause", "iterations"]);
    for row in job_table(&events) {
        t.row([
            row.id,
            row.state.to_string(),
            row.attempts.to_string(),
            row.retries.to_string(),
            row.cause.unwrap_or_else(|| "-".to_string()),
            row.iterations
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
        ]);
    }
    s.table(t);
    let causes = retry_causes(&events);
    if !causes.is_empty() {
        let mut t = TableView::new(["retry cause", "count"]);
        for (cause, n) in causes {
            t.row([cause, n.to_string()]);
        }
        s.table(t);
    }
    let (queue_wait, e2e) = latency_histograms(&events);
    let mut t = TableView::new(["latency", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"]);
    for (name, h) in [("queue wait", &queue_wait), ("end to end", &e2e)] {
        let Some((p50, p95, p99)) = h.quantile_summary() else {
            continue;
        };
        t.row([
            name.to_string(),
            h.count().to_string(),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
            h.max().unwrap_or(0).to_string(),
        ]);
    }
    if !t.rows.is_empty() {
        s.table(t);
    }
    s
}

fn overview_section(arts: &Artifacts) -> Section {
    let mut s = Section::new("Overview");
    let counts = [
        ("fascia-obs/1 metrics", arts.obs.len()),
        ("fascia-mem/1 memory", arts.mem.len()),
        ("fascia-est/1 estimator", arts.est.len()),
        ("fascia-perf/1 benchmarks", arts.perf.len()),
        ("fascia-svc-report/1 summaries", arts.svc.len()),
        ("fascia-heartbeat/1 status", arts.heartbeat.len()),
        ("fascia-ckpt/1 checkpoints", arts.checkpoints.len()),
        ("Chrome traces", arts.traces.len()),
        ("collapsed profiles", arts.profiles.len()),
    ];
    let ingested: Vec<String> = counts
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(what, n)| format!("{n} {what}"))
        .collect();
    if ingested.is_empty() {
        s.line("no recognized artifacts in this directory");
    } else {
        s.line(format!("ingested: {}", ingested.join(", ")));
    }
    if !arts.skipped.is_empty() {
        s.line(format!(
            "skipped (unrecognized): {}",
            arts.skipped.join(", ")
        ));
    }
    for (name, events) in &arts.traces {
        s.line(format!("trace {name}: {events} events"));
    }
    // Run metadata from the metrics document, provenance included.
    if let Some(run) = arts
        .obs
        .last()
        .and_then(|(_, v)| v.as_obj())
        .and_then(|o| Json::get(o, "run"))
        .and_then(Json::as_obj)
    {
        let mut t = TableView::new(["run", "value"]);
        for (k, v) in run {
            if let Some(text) = scalar_text(v) {
                t.row([k.clone(), text]);
            }
        }
        s.table(t);
    }
    s
}

fn allocator_section(name: &str, doc: &Json) -> Section {
    let mut s = Section::new("Allocator");
    s.line(format!("source: {name}"));
    let Some(a) = doc
        .as_obj()
        .and_then(|o| Json::get(o, "allocator"))
        .and_then(Json::as_obj)
    else {
        s.line("no allocator section in the document");
        return s;
    };
    let get = |k: &str| Json::get(a, k).and_then(Json::as_u64).unwrap_or(0);
    let enabled = matches!(Json::get(a, "enabled"), Some(Json::Bool(true)));
    let total = get("total_allocated_bytes");
    s.line(format!(
        "counting allocator {}: {} allocated over {} allocations, peak live {}",
        if enabled { "enabled" } else { "disabled" },
        fmt_bytes(total),
        get("total_allocs"),
        fmt_bytes(get("live_peak_bytes")),
    ));
    let frac = Json::get(a, "attributed_fraction")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    s.line(format!(
        "attributed to named phases: {} ({:.1}%)",
        fmt_bytes(get("attributed_bytes")),
        100.0 * frac
    ));
    let Some(phases) = Json::get(a, "phases").and_then(Json::as_obj) else {
        return s;
    };
    let mut rows: Vec<(String, u64, u64, u64)> = phases
        .iter()
        .filter_map(|(k, v)| {
            let o = v.as_obj()?;
            let g = |f: &str| Json::get(o, f).and_then(Json::as_u64).unwrap_or(0);
            Some((
                k.clone(),
                g("allocated_bytes"),
                g("allocs"),
                g("live_peak_bytes"),
            ))
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    let mut t = TableView::new(["phase", "allocated", "allocs", "live peak", "share"]);
    for (phase, bytes, allocs, peak) in rows {
        let share = if total > 0 {
            format!("{:.1}%", 100.0 * bytes as f64 / total as f64)
        } else {
            "-".to_string()
        };
        t.row([
            phase,
            fmt_bytes(bytes),
            allocs.to_string(),
            fmt_bytes(peak),
            share,
        ]);
    }
    s.table(t);
    s
}

fn tables_section(doc: &Json) -> Section {
    let mut s = Section::new("DP tables");
    let Some(tables) = doc
        .as_obj()
        .and_then(|o| Json::get(o, "tables"))
        .and_then(Json::as_obj)
    else {
        s.line("no tables section in the document");
        return s;
    };
    if tables.is_empty() {
        s.line("no tables were recorded");
        return s;
    }
    let mut t = TableView::new([
        "node",
        "kind",
        "builds",
        "peak",
        "occupancy",
        "gets",
        "row reads",
        "seq ratio",
        "max probe",
    ]);
    for (node, v) in tables {
        let Some(o) = v.as_obj() else { continue };
        let g = |f: &str| Json::get(o, f).and_then(Json::as_u64).unwrap_or(0);
        let occupancy = Json::get(o, "occupancy")
            .and_then(Json::as_f64)
            .map_or_else(|| "-".to_string(), |x| format!("{:.1}%", 100.0 * x));
        let access = Json::get(o, "access").and_then(Json::as_obj);
        let (gets, row_reads, seq) = match access {
            Some(a) => {
                let ga = |f: &str| Json::get(a, f).and_then(Json::as_u64).unwrap_or(0);
                let (sq, sc) = (ga("sequential"), ga("scattered"));
                let ratio = if sq + sc > 0 {
                    format!("{:.1}%", 100.0 * sq as f64 / (sq + sc) as f64)
                } else {
                    "-".to_string()
                };
                (ga("gets").to_string(), ga("row_reads").to_string(), ratio)
            }
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        let max_probe = Json::get(o, "probe")
            .and_then(Json::as_obj)
            .and_then(|p| Json::get(p, "max_probe"))
            .and_then(Json::as_u64)
            .map_or_else(|| "-".to_string(), |x| x.to_string());
        t.row([
            node.clone(),
            Json::get(o, "kind")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            g("builds").to_string(),
            fmt_bytes(g("bytes_peak")),
            occupancy,
            gets,
            row_reads,
            seq,
            max_probe,
        ]);
    }
    s.table(t);
    s
}

fn metrics_section(name: &str, doc: &Json) -> Section {
    let mut s = Section::new("Metrics");
    s.line(format!("source: {name}"));
    let Some(obj) = doc.as_obj() else { return s };
    if let Some(counters) = Json::get(obj, "counters").and_then(Json::as_obj) {
        let mut t = TableView::new(["counter", "total"]);
        for (k, v) in counters {
            let total = v
                .as_obj()
                .and_then(|o| Json::get(o, "total"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            t.row([k.clone(), total.to_string()]);
        }
        if !t.rows.is_empty() {
            s.table(t);
        }
    }
    if let Some(gauges) = Json::get(obj, "gauges").and_then(Json::as_obj) {
        let mut t = TableView::new(["gauge", "value"]);
        for (k, v) in gauges {
            t.row([k.clone(), v.as_u64().unwrap_or(0).to_string()]);
        }
        if !t.rows.is_empty() {
            s.table(t);
        }
    }
    if let Some(hists) = Json::get(obj, "histograms").and_then(Json::as_obj) {
        let mut t = TableView::new(["histogram", "count", "mean", "p50", "p99", "max"]);
        for (k, v) in hists {
            let Some(o) = v.as_obj() else { continue };
            let g = |f: &str| Json::get(o, f).and_then(Json::as_u64).unwrap_or(0);
            let mean = Json::get(o, "mean").and_then(Json::as_f64).unwrap_or(0.0);
            t.row([
                k.clone(),
                g("count").to_string(),
                format!("{mean:.1}"),
                g("p50").to_string(),
                g("p99").to_string(),
                g("max").to_string(),
            ]);
        }
        if !t.rows.is_empty() {
            s.table(t);
        }
    }
    if let Some(trace) = Json::get(obj, "trace")
        .and_then(Json::as_obj)
        .and_then(|t| Json::get(t, "events"))
        .and_then(Json::as_obj)
    {
        let g = |f: &str| Json::get(trace, f).and_then(Json::as_u64).unwrap_or(0);
        s.line(format!(
            "trace: {} events recorded ({} dropped)",
            g("recorded"),
            g("dropped")
        ));
    }
    s
}

/// The Estimator section: convergence summary, CI-trajectory sparkline
/// from the bounded ledger, and the per-taxonomy variance decomposition
/// of a `fascia-est/1` document.
fn estimator_section(name: &str, doc: &Json) -> Section {
    let mut s = Section::new("Estimator");
    s.line(format!("source: {name}"));
    let Some(obj) = doc.as_obj() else { return s };
    let get = |k: &str| Json::get(obj, k);
    let fopt = |k: &str| get(k).and_then(Json::as_f64);
    let iterations = get("iterations").and_then(Json::as_u64).unwrap_or(0);
    if iterations == 0 {
        s.line("no iterations recorded");
        return s;
    }
    let mut t = TableView::new(["field", "value"]);
    t.row(["iterations".to_string(), iterations.to_string()]);
    if let Some(est) = fopt("estimate") {
        t.row(["estimate".to_string(), format!("{est:.6}")]);
    }
    if let Some(se) = fopt("std_error") {
        t.row(["std error".to_string(), format!("{se:.6}")]);
    }
    if let Some(ci) = fopt("relative_ci95") {
        t.row([
            "relative CI (95%)".to_string(),
            format!("{:.3}%", 100.0 * ci),
        ]);
    }
    if let Some(eps) = fopt("target_epsilon") {
        t.row(["target epsilon".to_string(), format!("{eps}")]);
    }
    let adaptive = matches!(get("adaptive"), Some(Json::Bool(true)));
    t.row(["adaptive stop rule".to_string(), adaptive.to_string()]);
    if let Some(apriori) = get("apriori_iterations").and_then(Json::as_u64) {
        t.row(["a-priori (AYZ) bound".to_string(), apriori.to_string()]);
    }
    let to_target = get("iterations_to_target")
        .and_then(Json::as_u64)
        .map_or_else(|| "-".to_string(), |n| n.to_string());
    t.row(["iterations to target".to_string(), to_target]);
    let stalled = matches!(get("stalled"), Some(Json::Bool(true)));
    t.row(["stalled".to_string(), stalled.to_string()]);
    s.table(t);
    // The CI trajectory from the retained ledger entries (skips the
    // leading NaN entries where the CI is still undefined).
    if let Some(ledger) = get("ledger").and_then(Json::as_obj) {
        let entries = Json::get(ledger, "entries")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        let rel_ci: Vec<f64> = entries
            .iter()
            .filter_map(|e| Json::get(e.as_obj()?, "rel_ci").and_then(Json::as_f64))
            .collect();
        let spark = fascia_obs::sparkline(&rel_ci, 48);
        if !spark.is_empty() {
            s.line(format!(
                "relative CI trajectory ({} of {} iterations retained, stride {}):",
                entries.len(),
                Json::get(ledger, "offered")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                Json::get(ledger, "stride")
                    .and_then(Json::as_u64)
                    .unwrap_or(1),
            ));
            s.line(format!("  {spark}"));
        }
    }
    if let Some(strata) = get("strata").and_then(Json::as_obj) {
        for (taxonomy, title) in [
            ("colorset", "colorset count"),
            ("degree_class", "root degree class"),
        ] {
            let Some(tax) = Json::get(strata, taxonomy).and_then(Json::as_obj) else {
                continue;
            };
            let Some(classes) = Json::get(tax, "classes").and_then(Json::as_arr) else {
                continue;
            };
            let mut rows: Vec<(String, u64, f64, f64, f64)> = classes
                .iter()
                .filter_map(|c| {
                    let o = c.as_obj()?;
                    Some((
                        Json::get(o, "label").and_then(Json::as_str)?.to_string(),
                        Json::get(o, "n").and_then(Json::as_u64).unwrap_or(0),
                        Json::get(o, "mean").and_then(Json::as_f64).unwrap_or(0.0),
                        Json::get(o, "variance")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0),
                        Json::get(o, "share_pct")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0),
                    ))
                })
                .collect();
            rows.sort_by(|a, b| b.4.partial_cmp(&a.4).unwrap_or(std::cmp::Ordering::Equal));
            let mut t = TableView::new([
                format!("stratum ({title})"),
                "n".to_string(),
                "mean".to_string(),
                "variance".to_string(),
                "share".to_string(),
            ]);
            for (label, n, mean, var, share) in rows {
                t.row([
                    label,
                    n.to_string(),
                    format!("{mean:.4}"),
                    format!("{var:.4}"),
                    format!("{share:.1}%"),
                ]);
            }
            s.table(t);
            if let Some(cov) = Json::get(tax, "covariance_pct").and_then(Json::as_f64) {
                s.line(format!(
                    "{title}: cross-stratum covariance {cov:.1}% of total variance"
                ));
            }
        }
    }
    s
}

/// Median of an already-parsed `reps_s` array (0 when empty).
fn median_of(reps: &[Json]) -> f64 {
    let mut v: Vec<f64> = reps.iter().filter_map(Json::as_f64).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Benchmark name → (median seconds, threshold) from a fascia-perf/1 doc.
fn perf_medians(doc: &Json) -> Vec<(String, f64, f64)> {
    let Some(benches) = doc
        .as_obj()
        .and_then(|o| Json::get(o, "benchmarks"))
        .and_then(Json::as_obj)
    else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|(name, v)| {
            let o = v.as_obj()?;
            let reps = Json::get(o, "reps_s").and_then(Json::as_arr)?;
            let threshold = Json::get(o, "threshold")
                .and_then(Json::as_f64)
                .unwrap_or(1.3);
            Some((name.clone(), median_of(reps), threshold))
        })
        .collect()
}

fn perf_section(docs: &[(String, Json)], baseline: Option<&Json>) -> Section {
    let mut s = Section::new("Performance");
    let base: Vec<(String, f64, f64)> = baseline.map(perf_medians).unwrap_or_default();
    for (name, doc) in docs {
        s.line(format!("source: {name}"));
        let mut t = if baseline.is_some() {
            TableView::new(["benchmark", "median ms", "baseline ms", "ratio", "verdict"])
        } else {
            TableView::new(["benchmark", "median ms"])
        };
        for (bench, med, threshold) in perf_medians(doc) {
            if baseline.is_some() {
                let old = base
                    .iter()
                    .find(|(n, _, _)| *n == bench)
                    .map(|&(_, m, _)| m);
                let (old_ms, ratio, verdict) = match old {
                    Some(old_med) if old_med > 0.0 => {
                        let r = med / old_med;
                        let v = if r > threshold.max(1.0) {
                            "slower"
                        } else if r < 1.0 / threshold.max(1.0) {
                            "faster"
                        } else {
                            "similar"
                        };
                        (format!("{:.3}", old_med * 1e3), format!("{r:.3}"), v)
                    }
                    _ => ("-".to_string(), "-".to_string(), "added"),
                };
                t.row([
                    bench,
                    format!("{:.3}", med * 1e3),
                    old_ms,
                    ratio,
                    verdict.to_string(),
                ]);
            } else {
                t.row([bench, format!("{:.3}", med * 1e3)]);
            }
        }
        s.table(t);
    }
    s
}

/// A generic key/value section over a document's scalar top-level fields
/// (used for heartbeats, whose schema is additive).
fn scalar_section(title: &str, name: &str, doc: &Json) -> Section {
    let mut s = Section::new(title);
    s.line(format!("source: {name}"));
    let Some(obj) = doc.as_obj() else { return s };
    let mut t = TableView::new(["field", "value"]);
    for (k, v) in obj {
        if k == "schema" {
            continue;
        }
        if let Some(text) = scalar_text(v) {
            t.row([k.clone(), text]);
        }
    }
    if !t.rows.is_empty() {
        s.table(t);
    }
    s
}

fn profile_section(profiles: &[(String, String)]) -> Section {
    let mut s = Section::new("Profile");
    for (name, text) in profiles {
        s.line(format!("source: {name}"));
        // Collapsed format: one "frame;frame;frame count" line per stack.
        let mut stacks: Vec<(&str, u64)> = text
            .lines()
            .filter_map(|l| {
                let (stack, n) = l.rsplit_once(' ')?;
                Some((stack, n.parse::<u64>().ok()?))
            })
            .collect();
        stacks.sort_by_key(|b| std::cmp::Reverse(b.1));
        let total: u64 = stacks.iter().map(|&(_, n)| n).sum();
        let mut t = TableView::new(["stack", "samples", "share"]);
        for (stack, n) in stacks.into_iter().take(10) {
            let share = if total > 0 {
                format!("{:.1}%", 100.0 * n as f64 / total as f64)
            } else {
                "-".to_string()
            };
            t.row([stack.to_string(), n.to_string(), share]);
        }
        s.table(t);
    }
    s
}

/// Renders a scalar JSON value for a key/value table (`None` for
/// arrays/objects, which get their own sections).
fn scalar_text(v: &Json) -> Option<String> {
    Some(match v {
        Json::Str(s) => s.clone(),
        Json::UInt(n) => n.to_string(),
        Json::Num(x) => format!("{x}"),
        Json::Bool(b) => b.to_string(),
        Json::Null => "null".to_string(),
        Json::Arr(_) | Json::Obj(_) => return None,
    })
}

/// `1234567` → `1.18 MiB`-style human size (exact below 1 KiB).
fn fmt_bytes(n: u64) -> String {
    const UNITS: [&str; 4] = ["KiB", "MiB", "GiB", "TiB"];
    if n < 1024 {
        return format!("{n} B");
    }
    let mut x = n as f64 / 1024.0;
    let mut unit = 0;
    while x >= 1024.0 && unit + 1 < UNITS.len() {
        x /= 1024.0;
        unit += 1;
    }
    format!("{x:.2} {}", UNITS[unit])
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bytes_format_is_stable() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
        assert_eq!(fmt_bytes(1024), "1.00 KiB");
        assert_eq!(fmt_bytes(1_572_864), "1.50 MiB");
    }

    #[test]
    fn schema_classification_reads_the_tag() {
        let v = Json::parse("{\"schema\":\"fascia-mem/1\"}").unwrap();
        assert_eq!(schema_of(&v), Some("fascia-mem/1"));
        let arr = Json::parse("[{\"name\":\"x\"}]").unwrap();
        assert_eq!(schema_of(&arr), None);
        assert!(arr.as_arr().is_some());
    }

    #[test]
    fn perf_medians_recompute_from_reps() {
        let doc = Json::parse(
            "{\"schema\":\"fascia-perf/1\",\"benchmarks\":{\"b\":{\"threshold\":1.3,\
             \"reps_s\":[0.003,0.001,0.002]}}}",
        )
        .unwrap();
        let m = perf_medians(&doc);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].0, "b");
        assert!((m[0].1 - 0.002).abs() < 1e-12);
    }

    #[test]
    fn report_renders_from_synthetic_artifacts() {
        let mut arts = Artifacts::default();
        arts.mem.push((
            "mem.json".to_string(),
            Json::parse(
                "{\"schema\":\"fascia-mem/1\",\"allocator\":{\"enabled\":true,\
                 \"total_allocated_bytes\":1000,\"total_freed_bytes\":900,\
                 \"total_allocs\":10,\"total_frees\":9,\"live_peak_bytes\":500,\
                 \"attributed_bytes\":950,\"attributed_fraction\":0.95,\
                 \"phases\":{\"dp.n02.cut3\":{\"allocated_bytes\":950,\
                 \"freed_bytes\":900,\"allocs\":9,\"frees\":9,\
                 \"live_peak_bytes\":500}}},\
                 \"tables\":{\"dp.n02.cut3\":{\"kind\":\"hash\",\"builds\":2,\
                 \"bytes_peak\":2048,\"bytes_total\":4096,\"rows\":100,\
                 \"rows_materialized\":50,\"nonzero_rows\":40,\
                 \"live_entries\":80,\"total_slots\":400,\"occupancy\":0.2,\
                 \"probe\":{\"inserts\":80,\"probes\":90,\"max_probe\":3}}}}",
            )
            .unwrap(),
        ));
        let report = build_report(Path::new("/tmp/run"), &arts, None);
        let text = report.render_terminal();
        assert!(text.contains("Allocator"));
        assert!(text.contains("95.0%"));
        assert!(text.contains("dp.n02.cut3"));
        assert!(text.contains("hash"));
        let html = report.render_html();
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("DP tables"));
    }

    #[test]
    fn estimator_section_renders_trajectory_and_strata() {
        let mut arts = Artifacts::default();
        arts.est.push((
            "est.json".to_string(),
            Json::parse(
                "{\"schema\":\"fascia-est/1\",\"iterations\":12,\
                 \"estimate\":4200.5,\"std_error\":21.25,\"relative_ci95\":0.0099,\
                 \"target_epsilon\":0.05,\"target_delta\":0.05,\"adaptive\":false,\
                 \"apriori_iterations\":17784,\"iterations_to_target\":34,\
                 \"stalled\":false,\"apriori_exhausted\":false,\
                 \"ledger\":{\"cap\":512,\"stride\":1,\"offered\":12,\"entries\":[\
                 {\"iteration\":0,\"estimate\":4000,\"mean\":4000,\"rel_ci\":null},\
                 {\"iteration\":1,\"estimate\":4400,\"mean\":4200,\"rel_ci\":0.4},\
                 {\"iteration\":2,\"estimate\":4200,\"mean\":4200,\"rel_ci\":0.2},\
                 {\"iteration\":3,\"estimate\":4201,\"mean\":4200.5,\"rel_ci\":0.1}]},\
                 \"strata\":{\"colorset\":{\"covariance_pct\":12.5,\"classes\":[\
                 {\"label\":\"color 0\",\"n\":12,\"mean\":2100.0,\"variance\":10.0,\
                 \"share_pct\":62.5},\
                 {\"label\":\"color 1\",\"n\":12,\"mean\":2100.5,\"variance\":6.0,\
                 \"share_pct\":37.5}]},\
                 \"degree_class\":{\"covariance_pct\":-3.0,\"classes\":[\
                 {\"label\":\"deg[4,8)\",\"n\":12,\"mean\":4200.5,\"variance\":16.0,\
                 \"share_pct\":100.0}]}}}",
            )
            .unwrap(),
        ));
        let report = build_report(Path::new("/tmp/run"), &arts, None);
        let text = report.render_terminal();
        assert!(text.contains("Estimator"));
        assert!(text.contains("relative CI trajectory"));
        assert!(text.contains("stride 1"));
        // Strata rows sorted by descending share; covariance note present.
        assert!(text.contains("color 0"));
        assert!(text.contains("62.5%"));
        assert!(text.contains("deg[4,8)"));
        assert!(text.contains("cross-stratum covariance"));
        // The sparkline made it through (block characters, terminal-safe).
        assert!(text.contains('█') || text.contains('▁'));
        let html = report.render_html();
        assert!(html.contains("Estimator"));
    }

    #[test]
    fn service_section_folds_an_event_log() {
        let dir = std::env::temp_dir().join(format!("fascia-report-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("events")).unwrap();
        let log = fascia_obs::EventLog::open(dir.join("events").join("events.jsonl")).unwrap();
        use fascia_obs::{JobEvent, JobEventKind};
        for ev in [
            JobEvent::new(1000, "j1", JobEventKind::Submitted, 0),
            JobEvent::new(1010, "j1", JobEventKind::Dequeued, 0),
            JobEvent::new(1020, "j1", JobEventKind::Retried, 1).cause("worker-panic"),
            JobEvent::new(1100, "j1", JobEventKind::Completed, 2).iterations(16),
        ] {
            log.append(ev).unwrap();
        }
        let mut arts = Artifacts::default();
        arts.svc.push((
            "summary.json".to_string(),
            Json::parse(
                "{\"schema\":\"fascia-svc-report/1\",\"jobs_seen\":1,\
                 \"events_write_failures\":2,\"trace_events_dropped\":7}",
            )
            .unwrap(),
        ));
        let report = build_report(&dir, &arts, None);
        let text = report.render_terminal();
        assert!(text.contains("Service"));
        assert!(text.contains("2 event-log write failures"));
        assert!(text.contains("7 trace-ring events dropped"));
        assert!(text.contains("4 lifecycle events"));
        assert!(text.contains("completed"));
        assert!(text.contains("worker-panic"));
        assert!(text.contains("queue wait"));
        assert!(text.contains("end to end"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
