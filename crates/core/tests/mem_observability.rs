//! fascia-mem/1 coverage from the outside: the instrumentation must be
//! observe-only (bitwise-identical estimates whether memory observability
//! is absent, attached, or fully enabled), and the document shape is
//! pinned by a golden file (`BLESS=1 cargo test -p fascia-core --test
//! mem_observability` rewrites it).
//!
//! The access-tracking flag is process-global, so everything that toggles
//! it lives in one test function; the golden test never counts anything.

use std::sync::Arc;

use fascia_core::resilience::Json;
use fascia_core::{count_template, CountConfig, MemCollector, ParallelMode};
use fascia_graph::gen::gnm;
use fascia_obs::alloc::{MemPhaseSnapshot, MemSnapshot};
use fascia_table::{prune_zero_rows, AnyTable, CountTable as _, Rows, TableKind};
use fascia_template::Template;

fn cfg(iterations: usize) -> CountConfig {
    CountConfig {
        iterations,
        parallel: ParallelMode::Serial,
        seed: 1234,
        ..CountConfig::default()
    }
}

/// Memory observability off, attached, and fully enabled must all produce
/// the same per-iteration series bit for bit — the same contract the
/// metrics registry honors — and the enabled run must fill the collector
/// with per-node table statistics.
#[test]
fn mem_instrumentation_does_not_change_counts() {
    let g = gnm(45, 150, 83);
    let t = Template::path(5);
    let absent = cfg(6);
    let collector = Arc::new(MemCollector::new());
    let attached = CountConfig {
        mem: Some(Arc::clone(&collector)),
        ..cfg(6)
    };
    let a = count_template(&g, &t, &absent).unwrap();
    let b = count_template(&g, &t, &attached).unwrap();
    // Third run with the table access recorders live, like `--mem-stats`.
    let enabled_collector = Arc::new(MemCollector::new());
    let enabled = CountConfig {
        mem: Some(Arc::clone(&enabled_collector)),
        ..cfg(6)
    };
    fascia_table::set_access_tracking(true);
    let c = count_template(&g, &t, &enabled);
    fascia_table::set_access_tracking(false);
    let c = c.unwrap();
    assert_eq!(a.per_iteration, b.per_iteration, "collector attached");
    assert_eq!(a.per_iteration, c.per_iteration, "access tracking enabled");
    assert_eq!(a.estimate, c.estimate);

    // Both instrumented runs saw every DP node of the partition tree.
    for nodes in [collector.nodes(), enabled_collector.nodes()] {
        assert!(!nodes.is_empty(), "collector populated");
        for (name, stats) in &nodes {
            assert!(name.starts_with("dp.n"), "phase-taxonomy key: {name}");
            assert_eq!(stats.builds, 6, "one build per iteration: {name}");
            assert!(stats.bytes_peak > 0 && stats.bytes_total >= stats.bytes_peak);
            if let Some(occ) = stats.occupancy() {
                assert!((0.0..=1.0).contains(&occ), "{name}: occupancy {occ}");
            }
        }
    }
    // Only the enabled run carries access-pattern counters.
    assert!(collector.nodes().values().all(|s| s.access.is_none()));
    let with_access = enabled_collector
        .nodes()
        .values()
        .filter(|s| s.access.is_some())
        .count();
    assert!(with_access > 0, "access snapshots recorded when tracking");
}

/// The rendered fascia-mem/1 document is pinned byte for byte, and parses
/// back through the same depth-capped reader that guards checkpoint
/// resume. Built from fixed inputs only, so the golden is deterministic.
#[test]
fn mem_document_golden_round_trip() {
    let (n, nc) = (12, 4);
    let mut rows: Rows = (0..n)
        .map(|v| {
            if v % 3 == 0 {
                Some(vec![v as f64 + 0.5; nc].into_boxed_slice())
            } else {
                None
            }
        })
        .collect();
    prune_zero_rows(&mut rows);
    let table = AnyTable::from_rows_kind(TableKind::Hash, n, nc, rows);
    let collector = MemCollector::new();
    collector.record("dp.n00.vertex1", &table);
    collector.record("dp.n02.cut3", &table);
    collector.record("dp.n02.cut3", &table);
    let allocator = MemSnapshot {
        enabled: true,
        phases: vec![
            MemPhaseSnapshot {
                name: "(unattributed)".to_string(),
                allocated_bytes: 1_000,
                freed_bytes: 600,
                allocs: 10,
                frees: 6,
                live_peak_bytes: 700,
            },
            MemPhaseSnapshot {
                name: "dp.n02.cut3".to_string(),
                allocated_bytes: 9_000,
                freed_bytes: 9_000,
                allocs: 42,
                frees: 42,
                live_peak_bytes: 4_096,
            },
        ],
        total_allocated_bytes: 10_000,
        total_freed_bytes: 9_600,
        total_allocs: 52,
        total_frees: 48,
        live_peak_bytes: 4_796,
    };
    let doc = collector.to_json(Some(&allocator));

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mem.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &doc).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden missing; run once with BLESS=1 to create it");
    assert_eq!(doc, golden, "fascia-mem/1 serialization drifted");

    // Round trip: the document survives the depth-capped parser and the
    // numbers come back exactly.
    let parsed = Json::parse(&doc).unwrap();
    let obj = parsed.as_obj().unwrap();
    assert_eq!(
        Json::get(obj, "schema").and_then(Json::as_str),
        Some("fascia-mem/1")
    );
    let alloc = Json::get(obj, "allocator").and_then(Json::as_obj).unwrap();
    assert_eq!(
        Json::get(alloc, "total_allocated_bytes").and_then(Json::as_u64),
        Some(10_000)
    );
    let frac = Json::get(alloc, "attributed_fraction")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        (frac - 0.9).abs() < 1e-12,
        "9000 of 10000 attributed: {frac}"
    );
    let tables = Json::get(obj, "tables").and_then(Json::as_obj).unwrap();
    let cut = Json::get(tables, "dp.n02.cut3")
        .and_then(Json::as_obj)
        .unwrap();
    assert_eq!(Json::get(cut, "builds").and_then(Json::as_u64), Some(2));
    assert_eq!(
        Json::get(cut, "kind").and_then(Json::as_str),
        Some("hash"),
        "layout name survives"
    );
    assert!(
        Json::get(cut, "probe").is_some(),
        "hash probe stats present"
    );
}
