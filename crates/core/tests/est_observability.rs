//! fascia-est/1 coverage from the outside: the estimator-observability
//! rail must be observe-only (bitwise-identical `CountResult` with the
//! collector absent vs. attached, across every parallel mode × kernel),
//! its per-stratum variance shares must sum to ~100% within each
//! taxonomy, and the document must survive the depth-capped parser.

use std::sync::Arc;

use fascia_core::resilience::Json;
use fascia_core::stats::StopRule;
use fascia_core::{count_template, CountConfig, EstCollector, KernelKind, ParallelMode};
use fascia_graph::gen::gnm;
use fascia_template::Template;

fn get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    Json::get(v.as_obj()?, key)
}

/// The acceptance contract: for every parallel mode × kernel, attaching
/// an estimator collector changes neither the final estimate nor the
/// iteration count nor any per-iteration value — bit for bit.
#[test]
fn est_instrumentation_does_not_change_counts() {
    let g = gnm(40, 130, 97);
    let t = Template::path(5);
    for parallel in [
        ParallelMode::Serial,
        ParallelMode::InnerLoop,
        ParallelMode::OuterLoop,
    ] {
        for kernel in [KernelKind::Scalar, KernelKind::Vectorized] {
            let base = CountConfig {
                iterations: 8,
                parallel,
                kernel,
                seed: 4321,
                ..CountConfig::default()
            };
            let collector = Arc::new(EstCollector::new());
            let attached = CountConfig {
                est: Some(Arc::clone(&collector)),
                ..base.clone()
            };
            let off = count_template(&g, &t, &base).unwrap();
            let on = count_template(&g, &t, &attached).unwrap();
            assert_eq!(
                off.estimate, on.estimate,
                "estimate drifted ({parallel:?}/{kernel:?})"
            );
            assert_eq!(
                off.iterations_run, on.iterations_run,
                "iteration count drifted ({parallel:?}/{kernel:?})"
            );
            assert_eq!(
                off.per_iteration, on.per_iteration,
                "series drifted ({parallel:?}/{kernel:?})"
            );
            assert_eq!(collector.iterations(), on.iterations_run as u64);
        }
    }
}

/// Adaptive runs must also be untouched: the collector sees exactly the
/// iterations the stop rule executed, and the convergence trajectory in
/// the ledger matches the run's final statistics.
#[test]
fn est_attached_adaptive_run_matches_and_fills_ledger() {
    let g = gnm(40, 130, 7);
    let t = Template::path(4);
    let base = CountConfig {
        stop: Some(StopRule::relative_error(0.05, 0.05)),
        parallel: ParallelMode::Serial,
        seed: 99,
        ..CountConfig::default()
    };
    let collector = Arc::new(EstCollector::new());
    let attached = CountConfig {
        est: Some(Arc::clone(&collector)),
        ..base.clone()
    };
    let off = count_template(&g, &t, &base).unwrap();
    let on = count_template(&g, &t, &attached).unwrap();
    assert_eq!(off.per_iteration, on.per_iteration);
    assert_eq!(collector.iterations(), on.iterations_run as u64);

    let doc = collector.to_json();
    let v = Json::parse(&doc).expect("fascia-est/1 parses");
    assert_eq!(
        get(&v, "schema").and_then(Json::as_str),
        Some("fascia-est/1")
    );
    assert!(get(&v, "adaptive").is_some());
    let apriori = get(&v, "apriori_iterations")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(apriori > 0, "AYZ bound resolved");
    let entries = get(&v, "ledger")
        .and_then(|l| get(l, "entries"))
        .and_then(Json::as_arr)
        .unwrap();
    assert!(!entries.is_empty());
    // The last ledger entry's running mean is the final estimate (up to
    // the streaming-vs-batch summation difference: the engine recomputes
    // the reported estimate from the full series, the ledger records the
    // running Welford mean).
    let last = entries.last().unwrap();
    let last_mean = get(last, "mean").and_then(Json::as_f64).unwrap();
    assert!(
        (last_mean - on.estimate).abs() <= 1e-12 * on.estimate.abs(),
        "trajectory ends at the estimate: {last_mean} vs {est}",
        est = on.estimate
    );
}

/// Variance decomposition: within each stratum taxonomy the per-stratum
/// shares sum to ~100%, each iteration's stratum sums reassemble the
/// iteration total, and both taxonomies see every iteration.
#[test]
fn est_stratum_shares_sum_to_100_percent() {
    let g = gnm(60, 240, 11);
    let t = Template::path(4);
    let collector = Arc::new(EstCollector::new());
    let cfg = CountConfig {
        iterations: 12,
        parallel: ParallelMode::Serial,
        seed: 5,
        est: Some(Arc::clone(&collector)),
        ..CountConfig::default()
    };
    let res = count_template(&g, &t, &cfg).unwrap();
    assert!(res.estimate > 0.0, "test wants a non-degenerate run");
    let doc = collector.to_json();
    let v = Json::parse(&doc).unwrap();
    let strata = get(&v, "strata").unwrap();
    for taxonomy in ["colorset", "degree_class"] {
        let tax = get(strata, taxonomy).unwrap();
        let classes = get(tax, "classes").and_then(Json::as_arr).unwrap();
        assert!(!classes.is_empty(), "{taxonomy}: strata recorded");
        if taxonomy == "colorset" {
            // One stratum per color: the decomposition must not collapse
            // into a single degenerate bucket.
            assert_eq!(classes.len(), t.size(), "{taxonomy}: k color strata");
        }
        let mut share_total = 0.0;
        let mut mean_total = 0.0;
        for c in classes {
            let n = get(c, "n").and_then(Json::as_u64).unwrap();
            assert_eq!(n, res.iterations_run as u64, "{taxonomy}: full series");
            share_total += get(c, "share_pct").and_then(Json::as_f64).unwrap();
            mean_total += get(c, "mean").and_then(Json::as_f64).unwrap();
        }
        assert!(
            (share_total - 100.0).abs() < 1e-6,
            "{taxonomy}: shares sum to {share_total}"
        );
        // Stratum means reassemble the estimate: each iteration's stratum
        // sums equal that iteration's scaled total.
        assert!(
            (mean_total - res.estimate).abs() <= 1e-9 * res.estimate.abs().max(1.0),
            "{taxonomy}: stratum means sum to {mean_total}, estimate {est}",
            est = res.estimate
        );
    }
}

/// The ledger's memory bound holds against a long run: the retained
/// entry count stays at the cap while the stride grows, and the document
/// still parses.
#[test]
fn est_ledger_stays_bounded_on_long_runs() {
    let g = gnm(20, 40, 3);
    let t = Template::path(3);
    let collector = Arc::new(EstCollector::with_ledger_cap(16));
    let cfg = CountConfig {
        iterations: 300,
        parallel: ParallelMode::Serial,
        seed: 8,
        est: Some(Arc::clone(&collector)),
        ..CountConfig::default()
    };
    count_template(&g, &t, &cfg).unwrap();
    let doc = collector.to_json();
    let v = Json::parse(&doc).unwrap();
    let ledger = get(&v, "ledger").unwrap();
    assert_eq!(
        get(ledger, "offered").and_then(Json::as_u64),
        Some(300),
        "every iteration offered"
    );
    let entries = get(ledger, "entries").and_then(Json::as_arr).unwrap();
    assert!(entries.len() <= 17, "bounded: {} entries", entries.len());
    let stride = get(ledger, "stride").and_then(Json::as_u64).unwrap();
    assert!(stride.is_power_of_two() && stride > 1);
}

/// The rendered fascia-est/1 document is pinned byte for byte, and parses
/// back through the same depth-capped reader that guards checkpoint
/// resume. Built from a fixed seeded run, so the golden is deterministic.
#[test]
fn est_document_golden_round_trip() {
    let g = gnm(24, 60, 42);
    let t = Template::path(4);
    let collector = Arc::new(EstCollector::with_ledger_cap(8));
    let cfg = CountConfig {
        iterations: 10,
        parallel: ParallelMode::Serial,
        seed: 7,
        est: Some(Arc::clone(&collector)),
        ..CountConfig::default()
    };
    count_template(&g, &t, &cfg).unwrap();
    let doc = collector.to_json();

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/est.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &doc).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden missing; run once with BLESS=1 to create it");
    assert_eq!(doc, golden, "fascia-est/1 serialization drifted");

    let v = Json::parse(&doc).unwrap();
    assert_eq!(
        get(&v, "schema").and_then(Json::as_str),
        Some("fascia-est/1")
    );
    assert_eq!(get(&v, "iterations").and_then(Json::as_u64), Some(10));
    assert!(get(&v, "stalled").is_some());
    assert!(get(&v, "apriori_exhausted").is_some());
}
