//! Exact counting and enumeration by exhaustive backtracking.
//!
//! This is the paper's "naive exact count implementation" (§V-C) and the
//! ground truth for the error analysis (§V-D). It counts injective
//! homomorphisms of the template into the graph by mapping template
//! vertices in BFS order (each new vertex is constrained to the neighbors
//! of an already-mapped neighbor) and divides by the automorphism count α,
//! which the homomorphism count is always an exact multiple of.
//!
//! `enumerate_embeddings` exposes the same search as a visitor over
//! occurrences (vertex sets), fulfilling the "Enumeration" half of
//! FASCIA's name for graphs where listing is tractable.

use fascia_graph::Graph;
use fascia_template::automorphism::automorphisms;
use fascia_template::Template;
use rayon::prelude::*;

/// BFS order of template vertices plus, per vertex, the template neighbors
/// that precede it in the order.
fn matching_order(t: &Template) -> (Vec<u8>, Vec<Vec<u8>>) {
    let k = t.size();
    let mut order = Vec::with_capacity(k);
    let mut seen = vec![false; k];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0u8);
    seen[0] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in t.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    let pos: Vec<usize> = {
        let mut p = vec![0usize; k];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    let back_neighbors: Vec<Vec<u8>> = order
        .iter()
        .map(|&v| {
            t.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| pos[u as usize] < pos[v as usize])
                .collect()
        })
        .collect();
    (order, back_neighbors)
}

/// Counts injective homomorphisms from `t` into `g` (optionally
/// label-constrained), parallelized over the image of the first template
/// vertex.
pub fn count_homomorphisms(g: &Graph, labels: Option<&[u8]>, t: &Template) -> u128 {
    let (order, back) = matching_order(t);
    let k = t.size();
    let n = g.num_vertices();
    (0..n)
        .into_par_iter()
        .map(|v0| {
            if let Some(gl) = labels {
                if gl[v0] != t.label(order[0]) {
                    return 0u128;
                }
            }
            let mut image = vec![u32::MAX; k];
            image[0] = v0 as u32;
            let mut used = vec![false; n];
            used[v0] = true;
            extend(
                g,
                labels,
                t,
                &order,
                &back,
                &mut image,
                &mut used,
                1,
                &mut |_| {},
            )
        })
        .sum()
}

/// Exact count of non-induced occurrences (vertex-distinct embeddings up to
/// automorphism): homomorphisms / α.
pub fn count_exact(g: &Graph, t: &Template) -> u128 {
    let homs = count_homomorphisms(g, None, t);
    let alpha = automorphisms(t) as u128;
    debug_assert_eq!(homs % alpha, 0, "homomorphisms must divide by α");
    homs / alpha
}

/// Exact labeled count.
pub fn count_exact_labeled(g: &Graph, labels: &[u8], t: &Template) -> u128 {
    let homs = count_homomorphisms(g, Some(labels), t);
    let alpha = automorphisms(t) as u128;
    debug_assert_eq!(homs % alpha, 0);
    homs / alpha
}

/// Enumerates every occurrence exactly once (serial). The visitor receives
/// the mapped graph vertices in template-vertex order. Two homomorphisms
/// describe the same occurrence iff they induce the same image *edge set*
/// (they then differ by a template automorphism), so occurrences are
/// deduplicated on that key.
pub fn enumerate_embeddings(g: &Graph, t: &Template, mut visit: impl FnMut(&[u32])) {
    let (order, back) = matching_order(t);
    let k = t.size();
    let n = g.num_vertices();
    let mut seen: std::collections::HashSet<Vec<(u32, u32)>> = std::collections::HashSet::new();
    let mut image = vec![u32::MAX; k];
    let mut used = vec![false; n];
    for v0 in 0..n {
        image[0] = v0 as u32;
        used[v0] = true;
        extend(
            g,
            None,
            t,
            &order,
            &back,
            &mut image,
            &mut used,
            1,
            &mut |img| {
                // img is indexed by match position; rebuild template-id order.
                let mut by_tid = vec![0u32; k];
                for (pos, &tv) in order.iter().enumerate() {
                    by_tid[tv as usize] = img[pos];
                }
                let mut edge_key: Vec<(u32, u32)> = t
                    .edges()
                    .iter()
                    .map(|&(a, b)| {
                        let (x, y) = (by_tid[a as usize], by_tid[b as usize]);
                        if x < y {
                            (x, y)
                        } else {
                            (y, x)
                        }
                    })
                    .collect();
                edge_key.sort_unstable();
                if edge_key.is_empty() {
                    // Single-vertex template: the occurrence is the vertex.
                    edge_key.push((by_tid[0], by_tid[0]));
                }
                if seen.insert(edge_key) {
                    visit(&by_tid);
                }
            },
        );
        used[v0] = false;
    }
}

/// Recursive extension; counts completions and invokes `on_complete` with
/// the current image (indexed by match position).
#[allow(clippy::too_many_arguments)]
fn extend(
    g: &Graph,
    labels: Option<&[u8]>,
    t: &Template,
    order: &[u8],
    back: &[Vec<u8>],
    image: &mut [u32],
    used: &mut [bool],
    depth: usize,
    on_complete: &mut impl FnMut(&[u32]),
) -> u128 {
    if depth == order.len() {
        on_complete(image);
        return 1;
    }
    let tv = order[depth];
    // Position of each template vertex in the order.
    // back[depth] lists template neighbors already mapped; pick the first
    // as anchor and check the rest.
    let anchors = &back[depth];
    let anchor_pos = order
        .iter()
        .position(|&x| x == anchors[0])
        .expect("anchor is mapped");
    let anchor_img = image[anchor_pos] as usize;
    let mut total = 0u128;
    'cand: for &cand in g.neighbors(anchor_img) {
        let c = cand as usize;
        if used[c] {
            continue;
        }
        if let Some(gl) = labels {
            if gl[c] != t.label(tv) {
                continue;
            }
        }
        for &other in &anchors[1..] {
            let opos = order.iter().position(|&x| x == other).unwrap();
            if !g.has_edge(image[opos] as usize, c) {
                continue 'cand;
            }
        }
        image[depth] = cand;
        used[c] = true;
        total += extend(
            g,
            labels,
            t,
            order,
            back,
            image,
            used,
            depth + 1,
            on_complete,
        );
        used[c] = false;
    }
    image[depth] = u32::MAX;
    total
}

/// Exact non-induced path counts via closed form for tiny paths (cross
/// validation): the number of P3 (3-vertex paths) is Σ_v C(deg(v), 2).
pub fn exact_p3(g: &Graph) -> u128 {
    (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v) as u128;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_graph::gen::gnm;

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn triangle_count_in_k4() {
        // K4 has C(4,3) = 4 triangles.
        assert_eq!(count_exact(&k4(), &Template::triangle()), 4);
    }

    #[test]
    fn path3_in_k4_and_closed_form() {
        // P3 count in K4: each vertex has deg 3 -> 4 * C(3,2) = 12.
        let g = k4();
        assert_eq!(count_exact(&g, &Template::path(3)), 12);
        assert_eq!(exact_p3(&g), 12);
    }

    #[test]
    fn star_counts() {
        // Star S3 (center + 3 leaves) in K4: 4 centers * C(3,3) = 4.
        assert_eq!(count_exact(&k4(), &Template::star(4)), 4);
    }

    #[test]
    fn path_count_on_path_graph() {
        // A path graph on 6 vertices contains exactly 6 - k + 1 paths P_k.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        for k in 2..=6usize {
            assert_eq!(
                count_exact(&g, &Template::path(k)),
                (6 - k + 1) as u128,
                "P{k}"
            );
        }
    }

    #[test]
    fn closed_form_p3_matches_backtracking_on_random_graph() {
        let g = gnm(60, 180, 5);
        assert_eq!(count_exact(&g, &Template::path(3)), exact_p3(&g));
    }

    #[test]
    fn labeled_count_restricts() {
        // Path of 2 on a 4-cycle with alternating labels.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let gl = vec![0u8, 1, 0, 1];
        let t_same = Template::path(2).with_labels(vec![0, 0]).unwrap();
        let t_diff = Template::path(2).with_labels(vec![0, 1]).unwrap();
        // No edge joins two label-0 vertices.
        assert_eq!(count_exact_labeled(&g, &gl, &t_same), 0);
        // Every edge joins 0 and 1: all 4 edges match.
        assert_eq!(count_exact_labeled(&g, &gl, &t_diff), 4);
    }

    #[test]
    fn enumeration_matches_count() {
        let g = gnm(25, 60, 9);
        for t in [Template::path(4), Template::star(4), Template::triangle()] {
            let mut listed = 0u128;
            enumerate_embeddings(&g, &t, |img| {
                assert_eq!(img.len(), t.size());
                // All vertices distinct and all template edges present.
                let mut s = img.to_vec();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), t.size());
                for &(a, b) in t.edges() {
                    assert!(g.has_edge(img[a as usize] as usize, img[b as usize] as usize));
                }
                listed += 1;
            });
            assert_eq!(listed, count_exact(&g, &t), "template {t:?}");
        }
    }

    #[test]
    fn empty_result_on_sparse_graph() {
        // A tree has no triangles.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(count_exact(&g, &Template::triangle()), 0);
        assert_eq!(count_exact(&g, &Template::star(5)), 0);
    }

    #[test]
    fn single_vertex_template_counts_vertices() {
        let g = gnm(17, 30, 2);
        let t = Template::from_edges(1, &[]).unwrap();
        assert_eq!(count_exact(&g, &t), 17);
    }
}
