//! Directed subgraph counting — the extension the paper explicitly
//! defers ("although the algorithm theoretically allows for directed
//! templates and networks, we currently only analyze undirected").
//!
//! The dynamic program is the undirected one with a single change: when a
//! cut separates subtemplate root `r` from passive root `u'`, the neighbor
//! sum at graph vertex `v` walks `v`'s **out**-neighbors if the template
//! arc points `r -> u'` and its **in**-neighbors otherwise. Colorfulness,
//! scaling (`1 / (P · α)` with the *directed* automorphism count), and
//! table handling are unchanged.
//!
//! Canonical table sharing is disabled ([`PartitionTree::into_unshared`]):
//! two subtrees that are automorphic undirected may carry different arc
//! orientations, so their tables differ.

use crate::coloring::{iteration_seed, random_coloring};
use crate::engine::{CountConfig, CountError, CountResult};
use crate::stats::{EstimateStats, StopRule, Welford};
use fascia_combin::{colorful_probability, BinomialTable, ColorSetIter, SplitTable};
use fascia_graph::digraph::DiGraph;
use fascia_table::{CountTable, LazyTable, Rows};
use fascia_template::directed::DiTemplate;
use fascia_template::partition::NodeKind;
use fascia_template::PartitionTree;
use std::collections::HashMap;
use std::time::Instant;

/// Approximate count of non-induced occurrences of a directed tree
/// template in a directed graph.
pub fn count_directed(
    g: &DiGraph,
    t: &DiTemplate,
    cfg: &CountConfig,
) -> Result<CountResult, CountError> {
    let rule = cfg.stop_rule();
    match &rule {
        StopRule::FixedIterations(0) => return Err(CountError::NoIterations),
        r => r.validate().map_err(CountError::InvalidStopRule)?,
    }
    let k = cfg.colors.unwrap_or(t.size());
    if k < t.size() {
        return Err(CountError::NotEnoughColors {
            colors: k,
            template: t.size(),
        });
    }
    if k > fascia_combin::MAX_COLORS {
        return Err(CountError::TooManyColors(k));
    }
    let pt = PartitionTree::build(t.underlying(), cfg.strategy)?.into_unshared();
    let ctx = DirCtx::new(&pt, k);
    let alpha = t.automorphisms() as f64;
    let p = colorful_probability(k, t.size());
    let scale = p * alpha;
    let n = g.num_vertices();
    let start = Instant::now();
    // Directed counting is serial, so the stop rule is checked after
    // every iteration (no wave scheduling needed).
    let budget = rule.budget();
    let mut stream = Welford::new();
    let mut per_iteration = Vec::new();
    let mut peak_bytes = 0usize;
    for iter in 0..budget as u64 {
        let coloring = random_coloring(n, k, iteration_seed(cfg.seed, iter));
        let (total, peak) = run_directed_iteration(g, t, &pt, &ctx, &coloring);
        let est = total / scale;
        per_iteration.push(est);
        stream.push(est);
        peak_bytes = peak_bytes.max(peak);
        if rule.satisfied(&stream) {
            break;
        }
    }
    let elapsed = start.elapsed();
    let stats = EstimateStats::from_series(&per_iteration);
    let stop_cause = if per_iteration.len() < budget {
        crate::resilience::StopCause::Converged
    } else {
        crate::resilience::StopCause::Completed
    };
    Ok(CountResult {
        estimate: stats.mean,
        iterations_run: per_iteration.len(),
        std_error: stats.std_error,
        ci95: stats.ci95_half_width,
        per_iteration_time: elapsed / per_iteration.len() as u32,
        per_iteration,
        peak_table_bytes: peak_bytes,
        elapsed,
        automorphisms: alpha as u64,
        colorful_probability: p,
        stop_cause,
        resumed_iterations: 0,
    })
}

struct DirCtx {
    k: usize,
    nc: Vec<usize>,
    splits: HashMap<(u8, u8), SplitTable>,
    removals: HashMap<u8, Vec<i32>>,
}

impl DirCtx {
    fn new(pt: &PartitionTree, k: usize) -> Self {
        let binom = BinomialTable::new(fascia_combin::MAX_COLORS.max(k));
        let nc: Vec<usize> = (0..=k).map(|h| binom.get(k, h) as usize).collect();
        let mut splits = HashMap::new();
        let mut removals: HashMap<u8, Vec<i32>> = HashMap::new();
        for &idx in pt.unique_order() {
            let node = &pt.nodes()[idx as usize];
            if let NodeKind::Cut { active, .. } = node.kind {
                let a = pt.nodes()[active as usize].size;
                if a == 1 {
                    removals
                        .entry(node.size)
                        .or_insert_with(|| build_removals(k, node.size as usize, &binom));
                } else {
                    splits.entry((node.size, a)).or_insert_with(|| {
                        SplitTable::new(k, node.size as usize, a as usize, &binom)
                    });
                }
            }
        }
        Self {
            k,
            nc,
            splits,
            removals,
        }
    }
}

fn build_removals(k: usize, h: usize, binom: &BinomialTable) -> Vec<i32> {
    let nc = binom.get(k, h) as usize;
    let mut rem = vec![-1i32; nc * k];
    let mut sets = ColorSetIter::new(k, h);
    let mut idx = 0usize;
    let mut reduced: Vec<u8> = Vec::with_capacity(h - 1);
    while let Some(set) = sets.next() {
        for (pos, &c) in set.iter().enumerate() {
            reduced.clear();
            reduced.extend(
                set.iter()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, &x)| x),
            );
            rem[idx * k + c as usize] = fascia_combin::index_of_set(&reduced, binom) as i32;
        }
        idx += 1;
    }
    rem
}

enum DirStored {
    Single,
    Table(LazyTable),
}

fn run_directed_iteration(
    g: &DiGraph,
    t: &DiTemplate,
    pt: &PartitionTree,
    ctx: &DirCtx,
    coloring: &[u8],
) -> (f64, usize) {
    let n = g.num_vertices();
    let mut stored: Vec<Option<DirStored>> = Vec::new();
    stored.resize_with(pt.num_canon_classes(), || None);
    let mut uses = pt.class_use_counts();
    let mut live = 0usize;
    let mut peak = 0usize;

    for &idx in pt.unique_order() {
        let node = &pt.nodes()[idx as usize];
        let cid = node.canon_id as usize;
        match node.kind {
            NodeKind::Vertex => {
                stored[cid] = Some(DirStored::Single);
            }
            NodeKind::Triangle { .. } => {
                unreachable!("directed templates are trees");
            }
            NodeKind::Cut { active, passive } => {
                let a_node = &pt.nodes()[active as usize];
                let p_node = &pt.nodes()[passive as usize];
                let h = node.size as usize;
                let a = a_node.size as usize;
                let nc_h = ctx.nc[h];
                let nc_p = ctx.nc[p_node.size as usize];
                // Arc direction of the cut edge decides the neighbor list.
                let outward = t.points_from(node.root, p_node.root);
                let act = stored[a_node.canon_id as usize]
                    .as_ref()
                    .expect("active computed");
                let pas = stored[p_node.canon_id as usize]
                    .as_ref()
                    .expect("passive computed");
                let mut rows: Rows = Vec::new();
                rows.resize_with(n, || None);
                let mut pas_acc = vec![0.0f64; nc_p];
                for (v, slot) in rows.iter_mut().enumerate() {
                    // Active availability.
                    let act_row: Option<&[f64]> = match act {
                        DirStored::Single => None,
                        DirStored::Table(tb) => {
                            if !tb.vertex_active(v) {
                                continue;
                            }
                            tb.row_slice(v)
                        }
                    };
                    // Passive accumulation over the directed neighborhood.
                    pas_acc.iter_mut().for_each(|x| *x = 0.0);
                    let neigh = if outward {
                        g.out_neighbors(v)
                    } else {
                        g.in_neighbors(v)
                    };
                    let mut any = false;
                    match pas {
                        DirStored::Single => {
                            for &u in neigh {
                                pas_acc[coloring[u as usize] as usize] += 1.0;
                                any = true;
                            }
                        }
                        DirStored::Table(tb) => {
                            for &u in neigh {
                                if let Some(rrow) = tb.row_slice(u as usize) {
                                    for (acc, &x) in pas_acc.iter_mut().zip(rrow) {
                                        *acc += x;
                                    }
                                    any = true;
                                }
                            }
                        }
                    }
                    if !any {
                        continue;
                    }
                    let mut row = vec![0.0f64; nc_h].into_boxed_slice();
                    let mut nonzero = false;
                    if a == 1 {
                        let rem = &ctx.removals[&node.size];
                        let cv = coloring[v] as usize;
                        for (i, out) in row.iter_mut().enumerate() {
                            let r = rem[i * ctx.k + cv];
                            if r >= 0 {
                                let val = pas_acc[r as usize];
                                if val != 0.0 {
                                    *out = val;
                                    nonzero = true;
                                }
                            }
                        }
                    } else {
                        let split = &ctx.splits[&(node.size, a_node.size)];
                        let act_row = act_row.expect("multi-vertex active has a table row");
                        for (i, out) in row.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for sp in split.splits(i) {
                                let av = act_row[sp.active as usize];
                                if av != 0.0 {
                                    acc += av * pas_acc[sp.passive as usize];
                                }
                            }
                            if acc != 0.0 {
                                *out = acc;
                                nonzero = true;
                            }
                        }
                    }
                    if nonzero {
                        *slot = Some(row);
                    }
                }
                let table = LazyTable::from_rows(n, nc_h, rows);
                live += table.bytes();
                peak = peak.max(live);
                stored[cid] = Some(DirStored::Table(table));
                for child_cid in [a_node.canon_id as usize, p_node.canon_id as usize] {
                    uses[child_cid] -= 1;
                    if uses[child_cid] == 0 && child_cid != cid {
                        if let Some(DirStored::Table(old)) = stored[child_cid].take() {
                            live -= old.bytes();
                        }
                    }
                }
            }
        }
    }

    let total = match stored[pt.root().canon_id as usize]
        .as_ref()
        .expect("root computed")
    {
        DirStored::Single => n as f64,
        DirStored::Table(tb) => tb.total(),
    };
    (total, peak)
}

/// Exact count of directed non-induced occurrences by backtracking.
pub fn count_exact_directed(g: &DiGraph, t: &DiTemplate) -> u128 {
    let k = t.size();
    // BFS matching order over the underlying tree.
    let und = t.underlying();
    let mut order = Vec::with_capacity(k);
    let mut seen = vec![false; k];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0u8);
    seen[0] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in und.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    let pos = {
        let mut p = vec![0usize; k];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    // Per depth: (anchor position, template arc points anchor -> new).
    let anchors: Vec<(usize, bool)> = order
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &tv)| {
            let parent = und
                .neighbors(tv)
                .iter()
                .copied()
                .find(|&u| pos[u as usize] < i)
                .expect("BFS order has a mapped neighbor");
            (pos[parent as usize], t.points_from(parent, tv))
        })
        .collect();

    let n = g.num_vertices();
    let mut total = 0u128;
    let mut image = vec![u32::MAX; k];
    let mut used = vec![false; n];
    for v0 in 0..n {
        image[0] = v0 as u32;
        used[v0] = true;
        total += extend_dir(g, &anchors, &mut image, &mut used, 1);
        used[v0] = false;
    }
    let alpha = t.automorphisms() as u128;
    debug_assert_eq!(total % alpha, 0);
    total / alpha
}

fn extend_dir(
    g: &DiGraph,
    anchors: &[(usize, bool)],
    image: &mut [u32],
    used: &mut [bool],
    depth: usize,
) -> u128 {
    if depth > anchors.len() {
        return 1;
    }
    let (apos, outward) = anchors[depth - 1];
    let anchor_img = image[apos] as usize;
    let candidates = if outward {
        g.out_neighbors(anchor_img)
    } else {
        g.in_neighbors(anchor_img)
    };
    let mut total = 0u128;
    for &cand in candidates {
        let c = cand as usize;
        if used[c] {
            continue;
        }
        image[depth] = cand;
        used[c] = true;
        total += extend_dir(g, anchors, image, used, depth + 1);
        used[c] = false;
    }
    image[depth] = u32::MAX;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelMode;
    use fascia_graph::gen::gnm;

    fn cfg(iters: usize) -> CountConfig {
        CountConfig {
            iterations: iters,
            parallel: ParallelMode::Serial,
            seed: 88,
            ..CountConfig::default()
        }
    }

    #[test]
    fn single_arc_template_counts_arcs() {
        let und = gnm(40, 111, 2);
        let g = DiGraph::orient_randomly(&und, 7);
        let t = DiTemplate::directed_path(2);
        assert_eq!(count_exact_directed(&g, &t), 111);
        let r = count_directed(&g, &t, &cfg(1500)).unwrap();
        let rel = (r.estimate - 111.0).abs() / 111.0;
        assert!(rel < 0.08, "estimate {}", r.estimate);
    }

    #[test]
    fn directed_estimates_converge_to_exact() {
        let und = gnm(50, 170, 11);
        let g = DiGraph::orient_randomly(&und, 3);
        for t in [
            DiTemplate::directed_path(3),
            DiTemplate::directed_path(4),
            DiTemplate::out_star(4),
            DiTemplate::in_star(4),
            DiTemplate::from_arcs(4, &[(0, 1), (0, 2), (3, 0)]).unwrap(),
        ] {
            let exact = count_exact_directed(&g, &t) as f64;
            if exact == 0.0 {
                continue;
            }
            let r = count_directed(&g, &t, &cfg(1000)).unwrap();
            let rel = (r.estimate - exact).abs() / exact;
            assert!(
                rel < 0.12,
                "{t:?}: estimate {} vs exact {exact}",
                r.estimate
            );
        }
    }

    #[test]
    fn orientation_classes_partition_undirected_count() {
        // Every undirected P3 occurrence realizes exactly one of the three
        // directed 3-vertex patterns (path, out-star, in-star), so the
        // directed exact counts sum to the undirected exact count.
        let und = gnm(45, 140, 5);
        let g = DiGraph::orient_randomly(&und, 9);
        let undirected = crate::exact::count_exact(&und, &fascia_template::Template::path(3));
        let path = count_exact_directed(&g, &DiTemplate::directed_path(3));
        let out = count_exact_directed(&g, &DiTemplate::out_star(3));
        let inw = count_exact_directed(&g, &DiTemplate::in_star(3));
        assert_eq!(path + out + inw, undirected);
    }

    #[test]
    fn out_and_in_star_differ_on_skewed_orientation() {
        // Orient all edges low -> high id: vertex n-1 is a pure sink.
        let und = gnm(30, 90, 13);
        let arcs: Vec<(u32, u32)> = und.edges();
        let g = DiGraph::from_arcs(30, &arcs); // edges() gives u < v
        let out = count_exact_directed(&g, &DiTemplate::out_star(3));
        let inw = count_exact_directed(&g, &DiTemplate::in_star(3));
        // A DAG oriented by id generally has different in/out wedge counts;
        // at minimum the estimator must agree with each exactly.
        let r_out = count_directed(&g, &DiTemplate::out_star(3), &cfg(1200)).unwrap();
        let r_in = count_directed(&g, &DiTemplate::in_star(3), &cfg(1200)).unwrap();
        let rel_out = (r_out.estimate - out as f64).abs() / (out as f64).max(1.0);
        let rel_in = (r_in.estimate - inw as f64).abs() / (inw as f64).max(1.0);
        assert!(rel_out < 0.12, "out: {} vs {out}", r_out.estimate);
        assert!(rel_in < 0.12, "in: {} vs {inw}", r_in.estimate);
    }

    #[test]
    fn directed_symmetry_breaking_vs_undirected() {
        // Summing a directed template over both path orientations equals…
        // nothing trivial — but the directed count of P3 must be bounded by
        // the undirected count.
        let und = gnm(40, 120, 17);
        let g = DiGraph::orient_randomly(&und, 21);
        let directed = count_exact_directed(&g, &DiTemplate::directed_path(4));
        let undirected = crate::exact::count_exact(&und, &fascia_template::Template::path(4));
        assert!(directed <= undirected);
    }

    #[test]
    fn error_paths() {
        let und = gnm(10, 20, 1);
        let g = DiGraph::orient_randomly(&und, 1);
        let t = DiTemplate::directed_path(3);
        let mut c = cfg(1);
        c.iterations = 0;
        assert!(matches!(
            count_directed(&g, &t, &c),
            Err(CountError::NoIterations)
        ));
        let mut c = cfg(1);
        c.colors = Some(2);
        assert!(matches!(
            count_directed(&g, &t, &c),
            Err(CountError::NotEnoughColors { .. })
        ));
    }
}
