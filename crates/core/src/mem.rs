//! Memory & access-pattern observability: the `fascia-mem/1` document.
//!
//! This is the third resolve-once instrumentation rail next to `metrics`
//! (how much), `trace` (when), and `profile` (where time goes): *where
//! memory goes and how it is touched*. A [`MemCollector`] is attached to a
//! run via `CountConfig::mem`; the engine then
//!
//! 1. interns one allocator attribution phase per partition node (plus
//!    `iteration` / `coloring`) through [`fascia_obs::alloc`], so a binary
//!    that installed [`fascia_obs::CountingAlloc`] attributes its
//!    allocation volume to the same `dp.n<idx>.<kind><size>` taxonomy the
//!    tracer and profiler publish, and
//! 2. records every DP table into the collector at *release* time — after
//!    the parent consumed it — so the [`fascia_table::AccessSnapshot`]
//!    counters reflect the table's whole life, not its birth.
//!
//! Rendering [`MemCollector::to_json`] produces the stable, additive-only
//! `fascia-mem/1` document:
//!
//! ```json
//! {
//!   "schema": "fascia-mem/1",
//!   "allocator": { "enabled": bool, "total_allocated_bytes": u64, ...,
//!                   "phases": { "<phase>": { "allocated_bytes": u64, ... } } },
//!   "tables": { "<node>": {
//!       "kind": "naive|improved|hash", "builds": u64, "bytes_peak": u64,
//!       "bytes_total": u64, "rows": u64, "rows_materialized": u64,
//!       "nonzero_rows": u64, "live_entries": u64, "total_slots": u64,
//!       "occupancy": f64,
//!       "probe":  { "inserts": u64, "probes": u64, "max_probe": u64 },   // hash only
//!       "access": { "gets": u64, ..., "touch_hist": [u64,...], ... }     // tracking only
//!   } }
//! }
//! ```
//!
//! Like every observability rail here, the collector only observes:
//! counting results are bitwise identical with it absent, attached, or
//! attached with the allocator and access tracking enabled.

use fascia_obs::alloc::{self, MemPhaseGuard, MemPhaseId};
use fascia_obs::json::{array_of, ObjectWriter};
use fascia_obs::MemSnapshot;
use fascia_table::{AccessSnapshot, CountTable, TableStats, ACCESS_BUCKETS};
use fascia_template::partition::NodeKind;
use fascia_template::PartitionTree;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Aggregated storage/access statistics of every table built for one
/// partition node across all iterations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeMemStats {
    /// Layout name (`naive` / `improved` / `hash`) of the last build —
    /// under a budget gate the layout can differ between iterations.
    pub kind: String,
    /// Tables built (and released) for this node.
    pub builds: u64,
    /// Largest single-table footprint seen, bytes.
    pub bytes_peak: u64,
    /// Sum of footprints across builds, bytes.
    pub bytes_total: u64,
    /// Graph vertices per table (`n`).
    pub rows: u64,
    /// Rows the layout paid for, summed across builds.
    pub rows_materialized: u64,
    /// Rows holding at least one non-zero count, summed across builds.
    pub nonzero_rows: u64,
    /// Non-zero `(vertex, colorset)` entries, summed across builds.
    pub live_entries: u64,
    /// Logical `n * nc` slots, summed across builds (occupancy denominator).
    pub total_slots: u64,
    /// Hash construction probe stats, summed (hash layout only).
    pub probe: Option<fascia_table::ProbeStats>,
    /// Lifetime access counters, summed (present when tracking was on).
    pub access: Option<AccessSnapshot>,
}

impl NodeMemStats {
    /// Live entries over logical slots: the density that picks a layout
    /// (`None` before any build).
    pub fn occupancy(&self) -> Option<f64> {
        if self.total_slots == 0 {
            None
        } else {
            Some(self.live_entries as f64 / self.total_slots as f64)
        }
    }

    fn fold(&mut self, kind: &str, n: usize, nc: usize, bytes: usize, stats: &TableStats) {
        self.kind = kind.to_string();
        self.builds += 1;
        self.bytes_peak = self.bytes_peak.max(bytes as u64);
        self.bytes_total += bytes as u64;
        self.rows = n as u64;
        self.rows_materialized += stats.rows_materialized as u64;
        self.nonzero_rows += stats.nonzero_rows as u64;
        self.live_entries += stats.live_entries as u64;
        self.total_slots += (n * nc) as u64;
        if let Some(p) = stats.probe {
            let agg = self.probe.get_or_insert_with(Default::default);
            agg.inserts += p.inserts;
            agg.probes += p.probes;
            agg.max_probe = agg.max_probe.max(p.max_probe);
        }
        if let Some(a) = stats.access {
            let agg = self.access.get_or_insert_with(Default::default);
            agg.gets += a.gets;
            agg.inactive_skips += a.inactive_skips;
            agg.row_reads += a.row_reads;
            agg.sequential += a.sequential;
            agg.scattered += a.scattered;
            agg.touched_rows += a.touched_rows;
            for i in 0..ACCESS_BUCKETS {
                agg.touch_hist[i] += a.touch_hist[i];
                agg.probe_hist[i] += a.probe_hist[i];
            }
        }
    }
}

/// Thread-safe per-node aggregation of table memory/access statistics.
///
/// Cheap to share via `Arc`; the engine records once per table *release*
/// (a short mutex outside the hot loops), so attaching a collector does
/// not perturb the DP itself.
#[derive(Debug, Default)]
pub struct MemCollector {
    nodes: Mutex<BTreeMap<String, NodeMemStats>>,
}

impl MemCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one released table into the node keyed `name`
    /// (`dp.n<idx>.<kind><size>`).
    pub fn record<T: CountTable>(&self, name: &str, table: &T) {
        let stats = table.stats();
        let mut nodes = self.nodes.lock().unwrap_or_else(|e| e.into_inner());
        nodes.entry(name.to_string()).or_default().fold(
            table.kind().name(),
            table.num_vertices(),
            table.num_colorsets(),
            table.bytes(),
            &stats,
        );
    }

    /// Snapshot of the per-node aggregates (sorted by node name).
    pub fn nodes(&self) -> BTreeMap<String, NodeMemStats> {
        self.nodes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Renders the `fascia-mem/1` document. `allocator` supplies the
    /// process-wide allocation counters (pass the result of
    /// [`fascia_obs::alloc::snapshot`] when the counting allocator is
    /// installed; `None` renders a disabled allocator section so the
    /// document shape is invariant).
    pub fn to_json(&self, allocator: Option<&MemSnapshot>) -> String {
        let disabled = MemSnapshot::default();
        let alloc_json = allocator.unwrap_or(&disabled).to_json();
        let mut tables = ObjectWriter::new();
        for (name, s) in self.nodes().iter() {
            let mut o = ObjectWriter::new();
            o.field_str("kind", &s.kind)
                .field_u64("builds", s.builds)
                .field_u64("bytes_peak", s.bytes_peak)
                .field_u64("bytes_total", s.bytes_total)
                .field_u64("rows", s.rows)
                .field_u64("rows_materialized", s.rows_materialized)
                .field_u64("nonzero_rows", s.nonzero_rows)
                .field_u64("live_entries", s.live_entries)
                .field_u64("total_slots", s.total_slots)
                .field_f64("occupancy", s.occupancy().unwrap_or(0.0));
            if let Some(p) = s.probe {
                let mut po = ObjectWriter::new();
                po.field_u64("inserts", p.inserts)
                    .field_u64("probes", p.probes)
                    .field_u64("max_probe", p.max_probe);
                o.field_raw("probe", &po.finish());
            }
            if let Some(a) = s.access {
                let mut ao = ObjectWriter::new();
                ao.field_u64("gets", a.gets)
                    .field_u64("inactive_skips", a.inactive_skips)
                    .field_u64("row_reads", a.row_reads)
                    .field_u64("sequential", a.sequential)
                    .field_u64("scattered", a.scattered)
                    .field_u64("touched_rows", a.touched_rows)
                    .field_raw(
                        "touch_hist",
                        &array_of(a.touch_hist.iter().map(u64::to_string)),
                    )
                    .field_raw(
                        "probe_hist",
                        &array_of(a.probe_hist.iter().map(u64::to_string)),
                    );
                o.field_raw("access", &ao.finish());
            }
            tables.field_raw(name, &o.finish());
        }
        let mut root = ObjectWriter::new();
        root.field_str("schema", "fascia-mem/1")
            .field_raw("allocator", &alloc_json)
            .field_raw("tables", &tables.finish());
        root.finish()
    }
}

/// All memory-observability handles one counting run needs, resolved up
/// front: the collector plus interned allocator attribution phases.
pub(crate) struct RunMem {
    pub collector: Arc<MemCollector>,
    pub iteration: MemPhaseId,
    pub coloring: MemPhaseId,
    /// Per-subtemplate phase and name, indexed by partition-node id
    /// (`None` for nodes outside the unique evaluation order).
    pub node: Vec<Option<(MemPhaseId, String)>>,
}

impl RunMem {
    /// Interns every phase for the given partition tree. Returns `None`
    /// when no collector is attached, which is what hot paths branch on.
    pub(crate) fn resolve(mem: Option<&Arc<MemCollector>>, pt: &PartitionTree) -> Option<Self> {
        let collector = Arc::clone(mem?);
        let mut node: Vec<Option<(MemPhaseId, String)>> = vec![None; pt.nodes().len()];
        for &idx in pt.unique_order() {
            let n = &pt.nodes()[idx as usize];
            let kind = match n.kind {
                NodeKind::Vertex => "vertex",
                NodeKind::Triangle { .. } => "triangle",
                NodeKind::Cut { .. } => "cut",
            };
            let name = format!("dp.n{idx:02}.{kind}{}", n.size);
            node[idx as usize] = Some((alloc::intern_phase(&name), name));
        }
        Some(Self {
            collector,
            iteration: alloc::intern_phase("iteration"),
            coloring: alloc::intern_phase("coloring"),
            node,
        })
    }

    /// Enters an allocator attribution phase if collection is on.
    #[inline]
    pub(crate) fn enter_opt(
        mm: Option<&RunMem>,
        pick: impl FnOnce(&RunMem) -> MemPhaseId,
    ) -> Option<MemPhaseGuard> {
        mm.map(|m| alloc::enter_phase(pick(m)))
    }

    /// Enters the per-subtemplate attribution phase for node `idx`.
    #[inline]
    pub(crate) fn node_enter_opt(mm: Option<&RunMem>, idx: usize) -> Option<MemPhaseGuard> {
        let m = mm?;
        Some(alloc::enter_phase(m.node[idx].as_ref()?.0))
    }

    /// Folds a released table into the collector under node `idx`'s name.
    #[inline]
    pub(crate) fn record_node<T: CountTable>(mm: Option<&RunMem>, idx: usize, table: &T) {
        if let Some(m) = mm {
            if let Some((_, name)) = m.node[idx].as_ref() {
                m.collector.record(name, table);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_table::{prune_zero_rows, AnyTable, Rows, TableKind};
    use fascia_template::{PartitionStrategy, Template};

    fn sample_table(kind: TableKind) -> AnyTable {
        let (n, nc) = (12, 4);
        let mut rows: Rows = (0..n)
            .map(|v| {
                if v % 2 == 0 {
                    Some(vec![v as f64; nc].into_boxed_slice())
                } else {
                    None
                }
            })
            .collect();
        prune_zero_rows(&mut rows);
        AnyTable::from_rows_kind(kind, n, nc, rows)
    }

    #[test]
    fn collector_aggregates_across_builds() {
        let c = MemCollector::new();
        c.record("dp.n00.vertex1", &sample_table(TableKind::Lazy));
        c.record("dp.n00.vertex1", &sample_table(TableKind::Lazy));
        c.record("dp.n02.cut3", &sample_table(TableKind::Hash));
        let nodes = c.nodes();
        assert_eq!(nodes.len(), 2);
        let v = &nodes["dp.n00.vertex1"];
        assert_eq!(v.builds, 2);
        assert_eq!(v.kind, "improved");
        assert_eq!(v.rows, 12);
        assert_eq!(v.total_slots, 2 * 12 * 4);
        assert!(v.occupancy().unwrap() > 0.0);
        assert!(v.bytes_peak > 0 && v.bytes_total >= v.bytes_peak);
        let h = &nodes["dp.n02.cut3"];
        assert_eq!(h.kind, "hash");
        assert!(h.probe.is_some(), "hash layout reports probe stats");
    }

    #[test]
    fn json_document_has_the_stable_shape() {
        let c = MemCollector::new();
        c.record("dp.n00.vertex1", &sample_table(TableKind::Dense));
        let j = c.to_json(None);
        assert!(j.starts_with("{\"schema\":\"fascia-mem/1\""));
        assert!(j.contains("\"allocator\":{\"enabled\":false"));
        assert!(j.contains("\"tables\":{\"dp.n00.vertex1\":{\"kind\":\"naive\""));
        assert!(j.contains("\"occupancy\":"));
        // Dense layout: no probe section (additive, omitted when absent).
        assert!(!j.contains("\"probe\":{"));
    }

    #[test]
    fn resolve_requires_a_collector() {
        let t = Template::path(5);
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert!(RunMem::resolve(None, &pt).is_none());
        let c = Arc::new(MemCollector::new());
        let mm = RunMem::resolve(Some(&c), &pt).unwrap();
        for &idx in pt.unique_order() {
            let (_, name) = mm.node[idx as usize].as_ref().unwrap();
            assert!(name.starts_with(&format!("dp.n{idx:02}.")));
        }
        assert!(RunMem::enter_opt(None, |m| m.iteration).is_none());
        assert!(RunMem::node_enter_opt(None, 0).is_none());
    }
}
