//! The color-coding counting engine (Algorithms 1 and 2 of the paper).
//!
//! Per iteration: color the graph uniformly at random with `k` colors, then
//! run the bottom-up dynamic program over the template's partition tree.
//! For a subtemplate `S` with active child `a` and passive child `p`, the
//! count of `S` rooted at graph vertex `v` with color set `C` is
//!
//! ```text
//! table[S][v][C] = Σ_{u ∈ N(v)} Σ_{C = Ca ⊎ Cp} table[a][v][Ca] · table[p][u][Cp]
//! ```
//!
//! The implementation factors the sum over neighbors out of the split sum
//! (`Σ_u` distributes over `Σ_{Ca,Cp}`), accumulates passive-child rows
//! once per vertex, and then combines them against the active row via the
//! precomputed split tables of `fascia-combin`.
//!
//! Paper optimizations reproduced here:
//!
//! * single-vertex subtemplates are never materialized — their counts are
//!   read directly off the coloring (one non-zero color set per vertex, the
//!   `(k-1)/k` work reduction of §III-D),
//! * per-vertex "initialized" checks skip vertices whose active child has
//!   no counts (§III-C),
//! * automorphic subtemplates share one table (canonical-class dedup),
//! * tables are freed as soon as every consumer is done, keeping only a
//!   handful live (§III-C),
//! * vertex labels prune every base case (Fig. 4's speedup).

use crate::chaos::{Chaos, IoSite};
use crate::coloring::{iteration_seed, random_coloring};
use crate::est::{EstCollector, EstIterStrata, RunEst};
use crate::kernel::{cut_batch, KernelKind};
use crate::mem::{MemCollector, RunMem};
use crate::metrics::{CutMetrics, RunMetrics, TriangleMetrics};
use crate::parallel::ParallelMode;
use crate::profile::RunProf;
use crate::progress::{Progress, ProgressSnapshot};
use crate::resilience::{
    CancelToken, Checkpoint, CheckpointConfig, FaultInjection, StopCause, POLL_INTERVAL,
};
use crate::stats::{EstimateStats, StopRule, Welford};
use crate::trace::RunTrace;
use fascia_combin::{
    colorful_probability, BinomialTable, ColorSetIter, PositionSplitTable, SplitTable,
};
use fascia_graph::Graph;
use fascia_obs::{Metrics, Profiler, SpanTimer, Tracer};
use fascia_table::{
    projected_bytes, AnyTable, CountTable, DenseTable, HashCountTable, LazyTable, Rows, TableKind,
};
use fascia_template::automorphism::{automorphisms, rooted_automorphisms};
use fascia_template::canon::full_mask;
use fascia_template::partition::{NodeKind, PartitionError, SubNode};
use fascia_template::{PartitionStrategy, PartitionTree, Template};
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// XOR salt deriving the fresh coloring seed for a retried (previously
/// panicked) iteration, keeping the retry deterministic but independent.
const RETRY_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of a counting run.
#[derive(Debug, Clone)]
pub struct CountConfig {
    /// Number of color-coding iterations to average (Alg. 1, `N_iter`).
    pub iterations: usize,
    /// Number of colors `k`; defaults to the template size. More colors
    /// raise the colorful probability at the cost of bigger tables.
    pub colors: Option<usize>,
    /// Dynamic-table layout.
    pub table: TableKind,
    /// Cut-node DP kernel. Both kernels produce bitwise-identical counts
    /// for a fixed seed (enforced by the differential test suite); the
    /// vectorized default restructures the hot loop colorset-major for
    /// contiguous reads and a flat multiply-accumulate — see
    /// [`KernelKind`] and DESIGN.md §15.
    pub kernel: KernelKind,
    /// Template partitioning heuristic.
    pub strategy: PartitionStrategy,
    /// Threading scheme.
    pub parallel: ParallelMode,
    /// Base RNG seed; iteration `i` derives its coloring from
    /// `iteration_seed(seed, i)`, so results are identical across parallel
    /// modes.
    pub seed: u64,
    /// Optional adaptive stopping rule. `None` keeps the classic behavior
    /// of running exactly [`CountConfig::iterations`] iterations; `Some`
    /// overrides `iterations` entirely — see [`CountConfig::stop_rule`].
    ///
    /// With [`StopRule::RelativeError`] the engine folds every finished
    /// iteration's scaled estimate into a streaming [`Welford`]
    /// accumulator and stops as soon as the running confidence interval
    /// is tight enough. Serial and inner-loop modes check after every
    /// iteration; outer-loop and hybrid modes run *waves* of
    /// `num_threads` iterations between checks so per-worker private
    /// tables (and full thread utilization) are preserved.
    pub stop: Option<StopRule>,
    /// Optional metrics registry. When present and enabled, the engine
    /// records per-iteration coloring/DP timings, per-subtemplate spans,
    /// initialized-check skip counts, and measured table statistics (see
    /// the `metrics` module for the name schema). `None`, or a registry
    /// from [`Metrics::disabled`], costs one pointer check per hot-loop
    /// site and changes no counting result.
    pub metrics: Option<Arc<Metrics>>,
    /// Cooperative cancellation token (explicit cancel, external flag,
    /// and/or deadline). Checked at wave barriers and every
    /// [`POLL_INTERVAL`] vertices inside the per-vertex loops. A cancelled
    /// run discards its in-flight wave, flushes a final checkpoint when one
    /// is configured, and returns the partial estimate with
    /// [`CountResult::stop_cause`] marking it partial — unless *zero*
    /// iterations finished, which is [`CountError::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Soft cap on live DP-table bytes (per worker under outer-loop
    /// parallelism, which multiplies live tables by the thread count).
    /// Before each subtemplate table is built its footprint is projected
    /// for every layout on [`TableKind::ladder`] starting from
    /// [`CountConfig::table`]; the first layout that fits is used
    /// (`engine.degrade.layout_fallbacks` counts the steps down). When even
    /// the hashed layout cannot fit, the run fails with
    /// [`CountError::BudgetExceeded`] instead of thrashing.
    pub memory_budget_bytes: Option<usize>,
    /// Write a [`Checkpoint`] file at wave barriers (and once more when
    /// the run ends, however it ends), enabling `--resume`.
    pub checkpoint: Option<CheckpointConfig>,
    /// Optional flight recorder. When present the engine records the run's
    /// *timeline* — per-iteration and per-wave spans, per-subtemplate DP
    /// spans, table build/fallback instants, checkpoint flush/resume,
    /// cancellation and panic-retry events — into per-thread lock-free
    /// rings (see the `trace` module for the event taxonomy). Export with
    /// [`Tracer::to_chrome_json`] (Perfetto-loadable) or embed
    /// [`Tracer::summary_json`] in the metrics report. `None` costs one
    /// pointer check per site; ring overflow increments a drop counter and
    /// never changes a counting result.
    pub tracer: Option<Arc<Tracer>>,
    /// Optional sampling profiler. When present the engine publishes its
    /// current phase (`iteration` → `coloring` / per-subtemplate
    /// `dp.n<idx>.<kind><size>` spans, plus `wave` and
    /// `checkpoint.flush`) into the profiler's per-thread phase slots, so
    /// the watcher thread can attribute wall time to engine phases with
    /// flamegraph-compatible output (see [`Profiler::collapsed`]). The
    /// caller owns the watcher lifecycle ([`Profiler::start`] /
    /// [`Profiler::stop`]); publication alone is one relaxed store + one
    /// release add per phase boundary and never changes a counting
    /// result. `None` costs one pointer check per site.
    pub profiler: Option<Arc<Profiler>>,
    /// Optional live-progress reporter, driven at wave barriers with the
    /// iteration count, running estimate, and (for adaptive rules) the
    /// current relative CI half-width. Used by the CLI for the stderr
    /// progress line and the `--heartbeat` status file. Ignored by
    /// [`rooted_counts`] (which traces, but reports no scalar progress).
    pub progress: Option<Arc<Progress>>,
    /// Resume from a previously saved checkpoint: its per-iteration series
    /// seeds the estimator and the run continues at the next iteration
    /// index. The checkpoint's fingerprint (seed, colors, template size,
    /// graph shape, stop rule) must match this run or the engine returns
    /// [`CountError::ResumeMismatch`]. Ignored by [`rooted_counts`].
    pub resume: Option<Checkpoint>,
    /// Deterministic fault hooks for tests; the default injects nothing.
    pub fault: FaultInjection,
    /// Optional seed-scheduled chaos layer ([`crate::chaos`]). Each
    /// counting run claims a run index with [`Chaos::begin_run`] and then
    /// consults the schedule for worker panics (per iteration/attempt),
    /// injected checkpoint-write IO errors, DP stalls, and memory-budget
    /// squeezes. All decisions are pure functions of the schedule seed
    /// and fault coordinates, so a replay with the same spec and job
    /// order reproduces the identical event sequence. Ignored by
    /// [`rooted_counts`] (chaos targets the end-to-end counting path).
    pub chaos: Option<Arc<Chaos>>,
    /// Optional memory-observability collector. When present the engine
    /// attributes allocator traffic to the shared phase taxonomy (effective
    /// when the binary installed [`fascia_obs::CountingAlloc`]) and folds
    /// every released DP table's storage/access statistics into the
    /// collector, from which [`MemCollector::to_json`] renders the
    /// `fascia-mem/1` document. Purely observational: counting results are
    /// bitwise identical with it absent, attached, or fully enabled.
    /// `None` costs one pointer check per site.
    pub mem: Option<Arc<MemCollector>>,
    /// Optional estimator-convergence collector. When present the engine
    /// feeds every finished iteration's scaled estimate (plus the running
    /// mean and relative CI) into a bounded, deterministically-downsampled
    /// ledger and decomposes each iteration's root-table total across
    /// per-colorset and per-root-vertex-degree-class strata, from which
    /// [`EstCollector::to_json`] renders the `fascia-est/1` document.
    /// Purely observational — the stratum capture only re-reads the root
    /// table and the ledger is fed at wave barriers, so counting results
    /// are bitwise identical with it absent or attached. `None` costs one
    /// pointer check per site. Ignored by [`rooted_counts`].
    pub est: Option<Arc<EstCollector>>,
}

impl CountConfig {
    /// Configuration whose iteration count meets the Alon–Yuster–Zwick
    /// worst-case bound for relative error `epsilon` at confidence
    /// `1 - 2*delta` on a `template_size`-vertex template (Alg. 1 line 2).
    ///
    /// The bound is wildly conservative in practice (§V-D); use it when a
    /// guarantee matters more than speed.
    pub fn for_error(epsilon: f64, delta: f64, template_size: usize) -> Self {
        Self {
            iterations: fascia_combin::iterations_for(epsilon, delta, template_size) as usize,
            ..Self::default()
        }
    }

    /// Configuration that stops adaptively: iterate until the running
    /// estimate's relative confidence half-width at confidence `1 - delta`
    /// drops below `epsilon`, with the library-default iteration floor and
    /// budget (see [`StopRule::relative_error`]). In practice this reaches
    /// a given accuracy in orders of magnitude fewer iterations than
    /// [`CountConfig::for_error`]'s worst-case bound (§V-D).
    pub fn adaptive(epsilon: f64, delta: f64) -> Self {
        Self {
            stop: Some(StopRule::relative_error(epsilon, delta)),
            ..Self::default()
        }
    }

    /// The effective stopping rule: [`CountConfig::stop`] when set,
    /// otherwise `FixedIterations(self.iterations)`.
    pub fn stop_rule(&self) -> StopRule {
        self.stop
            .clone()
            .unwrap_or(StopRule::FixedIterations(self.iterations))
    }
}

impl Default for CountConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            colors: None,
            table: TableKind::Lazy,
            kernel: KernelKind::Vectorized,
            strategy: PartitionStrategy::OneAtATime,
            parallel: ParallelMode::Auto,
            seed: 0x00FA_5C1A,
            stop: None,
            metrics: None,
            cancel: None,
            memory_budget_bytes: None,
            checkpoint: None,
            tracer: None,
            profiler: None,
            progress: None,
            resume: None,
            fault: FaultInjection::default(),
            chaos: None,
            mem: None,
            est: None,
        }
    }
}

/// Errors from the counting entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountError {
    /// The template could not be partitioned.
    Partition(PartitionError),
    /// The template carries labels but no graph labels were supplied.
    LabelsRequired,
    /// Graph label vector length differs from the vertex count.
    LabelLengthMismatch,
    /// Fewer colors than template vertices.
    NotEnoughColors { colors: usize, template: usize },
    /// More colors than the combinatorial tables support.
    TooManyColors(usize),
    /// Zero iterations requested.
    NoIterations,
    /// The configured [`StopRule`] has unusable parameters; the payload
    /// says which one.
    InvalidStopRule(&'static str),
    /// Even the most compact table layout cannot fit a required DP table
    /// under [`CountConfig::memory_budget_bytes`].
    BudgetExceeded {
        /// Projected live bytes with the hashed (most compact) layout.
        required: usize,
        /// The configured per-worker budget.
        budget: usize,
    },
    /// A resume checkpoint's fingerprint disagrees with this run; the
    /// payload names the first mismatching field.
    ResumeMismatch(&'static str),
    /// The run was cancelled before a single iteration finished, so there
    /// is no estimate to report (a configured checkpoint is still
    /// flushed, and is valid for `--resume`).
    Cancelled,
    /// Writing a checkpoint file failed (estimates cannot be protected,
    /// so the run stops rather than silently losing recoverability).
    CheckpointWrite(String),
}

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountError::Partition(e) => write!(f, "partitioning failed: {e}"),
            CountError::LabelsRequired => {
                write!(f, "labeled template requires graph labels")
            }
            CountError::LabelLengthMismatch => {
                write!(f, "graph label vector length must equal vertex count")
            }
            CountError::NotEnoughColors { colors, template } => {
                write!(f, "{colors} colors < {template} template vertices")
            }
            CountError::TooManyColors(k) => write!(
                f,
                "{k} colors exceed the supported maximum of {}",
                fascia_combin::MAX_COLORS
            ),
            CountError::NoIterations => write!(f, "at least one iteration is required"),
            CountError::InvalidStopRule(why) => write!(f, "invalid stop rule: {why}"),
            CountError::BudgetExceeded { required, budget } => write!(
                f,
                "memory budget exceeded: even the hashed layout needs \
                 {required} live bytes against a budget of {budget}"
            ),
            CountError::ResumeMismatch(field) => {
                write!(f, "checkpoint does not match this run: {field} differs")
            }
            CountError::Cancelled => {
                write!(f, "run cancelled before any iteration completed")
            }
            CountError::CheckpointWrite(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for CountError {}

impl From<PartitionError> for CountError {
    fn from(e: PartitionError) -> Self {
        CountError::Partition(e)
    }
}

/// Result of a counting run.
#[derive(Debug, Clone)]
pub struct CountResult {
    /// Final estimate: mean of the per-iteration estimates (Alg. 1 line 7).
    pub estimate: f64,
    /// Per-iteration scaled estimates (already divided by `P · α`).
    pub per_iteration: Vec<f64>,
    /// Iterations actually executed. Equals the configured count under
    /// `FixedIterations`; under [`StopRule::RelativeError`] it is whatever
    /// the convergence test settled on (at most the rule's `max_iters`).
    pub iterations_run: usize,
    /// Standard error of the mean over the per-iteration estimates.
    pub std_error: f64,
    /// Half-width of the ~95% normal-approximation confidence interval:
    /// the estimate is `estimate ± ci95` at 95% confidence.
    pub ci95: f64,
    /// Peak bytes held in DP tables plus index tables, across iterations.
    pub peak_table_bytes: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Mean wall-clock of one iteration.
    pub per_iteration_time: Duration,
    /// Automorphism count `α` used in the final scaling.
    pub automorphisms: u64,
    /// Colorful probability `P` used in the final scaling.
    pub colorful_probability: f64,
    /// Why the run stopped. [`StopCause::is_partial`] marks estimates
    /// built from fewer iterations than the stop rule wanted (the
    /// estimate is still an unbiased mean of the iterations that ran).
    pub stop_cause: StopCause,
    /// Iterations replayed from a resume checkpoint (counted into
    /// [`CountResult::iterations_run`] but not re-executed).
    pub resumed_iterations: usize,
}

/// Result of a rooted (per-vertex) counting run.
#[derive(Debug, Clone)]
pub struct RootedResult {
    /// Estimated graphlet degree of every vertex for the chosen orbit.
    pub per_vertex: Vec<f64>,
    /// Scaling used (`P · α_rooted`).
    pub scale: f64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Why the run stopped (see [`CountResult::stop_cause`]).
    pub stop_cause: StopCause,
}

/// Approximate count of non-induced occurrences of an unlabeled template.
///
/// ```
/// use fascia_core::engine::{count_template, CountConfig};
/// use fascia_graph::Graph;
/// use fascia_template::Template;
///
/// // A 6-cycle contains exactly 6 three-vertex paths.
/// let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
/// let cfg = CountConfig { iterations: 400, ..CountConfig::default() };
/// let r = count_template(&g, &Template::path(3), &cfg).unwrap();
/// assert!((r.estimate - 6.0).abs() < 1.0);
/// ```
pub fn count_template(
    g: &Graph,
    t: &Template,
    cfg: &CountConfig,
) -> Result<CountResult, CountError> {
    if t.labels().is_some() {
        return Err(CountError::LabelsRequired);
    }
    count_impl(g, None, t, cfg)
}

/// Approximate count of a labeled template in a vertex-labeled graph.
///
/// Both labelings use small integer alphabets; a template vertex may only
/// map onto a graph vertex with an equal label.
pub fn count_template_labeled(
    g: &Graph,
    graph_labels: &[u8],
    t: &Template,
    cfg: &CountConfig,
) -> Result<CountResult, CountError> {
    if graph_labels.len() != g.num_vertices() {
        return Err(CountError::LabelLengthMismatch);
    }
    count_impl(g, Some(graph_labels), t, cfg)
}

/// Per-vertex rooted counts: the estimated number of occurrences in which
/// each graph vertex plays the role of template vertex `orbit` (graphlet
/// degrees, §V-F).
pub fn rooted_counts(
    g: &Graph,
    t: &Template,
    orbit: u8,
    cfg: &CountConfig,
) -> Result<RootedResult, CountError> {
    if t.labels().is_some() {
        return Err(CountError::LabelsRequired);
    }
    let k = effective_colors(t, cfg)?;
    let pt = PartitionTree::build_with_root(t, orbit, cfg.strategy)?;
    let ctx = DpContext::new(t, &pt, k);
    let rm = RunMetrics::resolve(cfg.metrics.as_deref(), &pt);
    let tr = RunTrace::resolve(cfg.tracer.as_ref(), &pt);
    let pr = RunProf::resolve(cfg.profiler.as_ref(), &pt);
    let mm = RunMem::resolve(cfg.mem.as_ref(), &pt);
    let start = Instant::now();
    let rule = cfg.stop_rule();
    let budget = rule.budget().max(1);
    let alpha_rooted = rooted_automorphisms(t, orbit, full_mask(t.size()));
    let p = colorful_probability(k, t.size());
    let scale = p * alpha_rooted as f64;

    let fault = cfg.fault;
    let cancel: Option<CancelToken> = cfg
        .cancel
        .clone()
        .or_else(|| fault.cancel_on_iteration.map(|_| CancelToken::new()));
    let mode = cfg.parallel.resolve(g.num_vertices(), budget);
    let check_interval = match mode {
        ParallelMode::OuterLoop | ParallelMode::Hybrid => rayon::current_num_threads().max(1),
        _ => 1,
    };
    let gate = cfg.memory_budget_bytes.map(|limit| BudgetGate {
        limit: limit / check_interval.max(1),
        preferred: cfg.table,
    });

    let run_attempt = |i: usize, inner: bool, seed: u64| -> Result<Vec<f64>, CountError> {
        let iter_span = SpanTimer::start_opt(rm.as_ref().map(|m| &*m.iteration_ns));
        let iter_tspan = RunTrace::span_opt(tr.as_ref(), |t| t.iteration, i as u64);
        let iter_ph = RunProf::enter_opt(pr.as_ref(), |p| p.iteration);
        let iter_mph = RunMem::enter_opt(mm.as_ref(), |m| m.iteration);
        let col_span = SpanTimer::start_opt(rm.as_ref().map(|m| &*m.coloring_ns));
        let col_tspan = RunTrace::span_opt(tr.as_ref(), |t| t.coloring, i as u64);
        let col_ph = RunProf::enter_opt(pr.as_ref(), |p| p.coloring);
        let col_mph = RunMem::enter_opt(mm.as_ref(), |m| m.coloring);
        let coloring = random_coloring(g.num_vertices(), k, iteration_seed(seed, i as u64));
        drop(col_mph);
        drop(col_ph);
        drop(col_tspan);
        drop(col_span);
        let out = dispatch_iteration(
            g,
            None,
            t,
            &pt,
            &ctx,
            &coloring,
            inner,
            cfg.kernel,
            cfg.table,
            gate.as_ref(),
            cancel.as_ref(),
            true,
            fault,
            rm.as_ref(),
            tr.as_ref(),
            pr.as_ref(),
            mm.as_ref(),
            None,
        )?;
        drop(iter_mph);
        drop(iter_ph);
        drop(iter_tspan);
        drop(iter_span);
        if let Some(m) = rm.as_ref() {
            m.iterations_total.inc();
            if out.colorful_total != 0.0 {
                m.iterations_colorful.inc();
            }
            m.table.bytes_peak.set_max(out.peak_bytes as u64);
        }
        Ok(out.root_row_sums.expect("rooted run collects row sums"))
    };
    let run_one = |i: usize, inner: bool| -> Result<Vec<f64>, CountError> {
        if let Some(tok) = &cancel {
            if fault.cancel_on_iteration == Some(i) {
                tok.cancel();
            }
            if tok.is_cancelled() {
                return Err(CountError::Cancelled);
            }
        }
        match catch_unwind(AssertUnwindSafe(|| {
            if fault.panic_on_iteration == Some(i) {
                panic!("injected fault at iteration {i}");
            }
            run_attempt(i, inner, cfg.seed)
        })) {
            Ok(res) => res,
            Err(_poison) => {
                if let Some(m) = rm.as_ref() {
                    m.iterations_poisoned.inc();
                    m.iterations_retried.inc();
                }
                RunTrace::instant_opt(tr.as_ref(), |t| t.panic_retry, i as u64);
                match catch_unwind(AssertUnwindSafe(|| {
                    run_attempt(i, inner, cfg.seed ^ RETRY_SEED_SALT)
                })) {
                    Ok(res) => res,
                    Err(again) => resume_unwind(again),
                }
            }
        }
    };

    // Wave schedule mirroring `count_impl`: the rooted convergence test
    // streams the *total* rooted count of each iteration (Σ_v row-sum,
    // scaled), since per-vertex convergence would be both noisy and
    // O(n) per check. Checkpoint/resume does not apply here (the
    // checkpoint format stores the scalar series only).
    let resilient = cancel.is_some() || fault != FaultInjection::default();
    let mut stream = Welford::new();
    let mut sums: Vec<Vec<f64>> = Vec::new();
    let mut cause = StopCause::Completed;
    loop {
        let done = sums.len();
        if done >= budget {
            break;
        }
        let target = if done == 0 && !resilient {
            rule.min_iterations().clamp(1, budget)
        } else {
            (done + check_interval).min(budget)
        };
        let wave_tspan = RunTrace::span_opt(tr.as_ref(), |t| t.wave, (target - done) as u64);
        let wave_ph = RunProf::enter_opt(pr.as_ref(), |p| p.wave);
        let wave: Vec<Result<Vec<f64>, CountError>> = match mode {
            ParallelMode::OuterLoop => (done..target)
                .into_par_iter()
                .map(|i| run_one(i, false))
                .collect(),
            ParallelMode::Hybrid => (done..target)
                .into_par_iter()
                .map(|i| run_one(i, true))
                .collect(),
            ParallelMode::InnerLoop => (done..target).map(|i| run_one(i, true)).collect(),
            _ => (done..target).map(|i| run_one(i, false)).collect(),
        };
        drop(wave_ph);
        drop(wave_tspan);
        let cancelled = cancel.as_ref().is_some_and(|c| c.is_cancelled())
            || wave.iter().any(|r| matches!(r, Err(CountError::Cancelled)));
        if cancelled {
            cause = cancel
                .as_ref()
                .and_then(|c| c.cause())
                .unwrap_or(StopCause::Cancelled);
            RunTrace::instant_opt(tr.as_ref(), |t| t.cancelled, sums.len() as u64);
            break;
        }
        for r in wave {
            let s = r?;
            stream.push(s.iter().sum::<f64>() / scale);
            sums.push(s);
        }
        if rule.satisfied(&stream) {
            if sums.len() < budget {
                cause = StopCause::Converged;
            }
            break;
        }
        if sums.len() >= budget {
            break;
        }
    }
    if sums.is_empty() {
        return Err(CountError::Cancelled);
    }
    let iters = sums.len();
    if let Some(m) = rm.as_ref() {
        if rule.is_adaptive() && !cause.is_partial() {
            m.iterations_saved.add((budget - sums.len()) as u64);
        }
    }
    let n = g.num_vertices();
    let mut per_vertex = vec![0.0f64; n];
    for s in &sums {
        for (acc, &x) in per_vertex.iter_mut().zip(s) {
            *acc += x;
        }
    }
    let denom = scale * iters as f64;
    for x in per_vertex.iter_mut() {
        *x /= denom;
    }
    Ok(RootedResult {
        per_vertex,
        scale,
        elapsed: start.elapsed(),
        stop_cause: cause,
    })
}

pub(crate) fn effective_colors(t: &Template, cfg: &CountConfig) -> Result<usize, CountError> {
    match cfg.stop_rule() {
        StopRule::FixedIterations(0) => return Err(CountError::NoIterations),
        rule => rule.validate().map_err(CountError::InvalidStopRule)?,
    }
    let k = cfg.colors.unwrap_or(t.size());
    if k < t.size() {
        return Err(CountError::NotEnoughColors {
            colors: k,
            template: t.size(),
        });
    }
    if k > fascia_combin::MAX_COLORS {
        return Err(CountError::TooManyColors(k));
    }
    Ok(k)
}

fn count_impl(
    g: &Graph,
    labels: Option<&[u8]>,
    t: &Template,
    cfg: &CountConfig,
) -> Result<CountResult, CountError> {
    if t.labels().is_some() && labels.is_none() {
        return Err(CountError::LabelsRequired);
    }
    let k = effective_colors(t, cfg)?;
    let pt = PartitionTree::build(t, cfg.strategy)?;
    let ctx = DpContext::new(t, &pt, k);
    let rm = RunMetrics::resolve(cfg.metrics.as_deref(), &pt);
    let tr = RunTrace::resolve(cfg.tracer.as_ref(), &pt);
    let pr = RunProf::resolve(cfg.profiler.as_ref(), &pt);
    let mm = RunMem::resolve(cfg.mem.as_ref(), &pt);
    let es = RunEst::resolve(cfg.est.as_ref(), g);
    let alpha = automorphisms(t);
    let p = colorful_probability(k, t.size());
    let scale = p * alpha as f64;
    let rule = cfg.stop_rule();
    let budget = rule.budget();
    if let Some(e) = es.as_ref() {
        // Resolve the stop-rule targets (or the library defaults for a
        // fixed run) and the AYZ a-priori bound once, so the document can
        // compare the observed trajectory against the guarantee.
        let (eps, delta) = match &rule {
            StopRule::RelativeError { epsilon, delta, .. } => (*epsilon, *delta),
            _ => (0.05, 0.05),
        };
        let apriori = fascia_combin::iterations_for(eps, delta, t.size());
        e.set_run_context(eps, delta, apriori, rule.is_adaptive());
    }
    let start = Instant::now();

    // A resume checkpoint's fingerprint must match this run exactly
    // before its series can be trusted.
    let resumed: &[f64] = match &cfg.resume {
        Some(ck) => {
            let checks: [(&'static str, bool); 6] = [
                ("seed", ck.seed == cfg.seed),
                ("colors", ck.colors == k),
                ("template_size", ck.template_size == t.size()),
                ("graph_vertices", ck.graph_vertices == g.num_vertices()),
                ("graph_edges", ck.graph_edges == g.num_edges()),
                ("rule", ck.rule == rule),
            ];
            if let Some(&(field, _)) = checks.iter().find(|&&(_, ok)| !ok) {
                return Err(CountError::ResumeMismatch(field));
            }
            &ck.per_iteration
        }
        None => &[],
    };
    if cfg.resume.is_some() {
        RunTrace::instant_opt(tr.as_ref(), |t| t.checkpoint_resume, resumed.len() as u64);
    }

    let fault = cfg.fault;
    // Each counting run claims one chaos run index; faults then address
    // (run, iteration, attempt) coordinates, so a supervisor retry rolls
    // fresh coordinates and injected faults stay transient.
    let chaos_run = cfg.chaos.as_ref().map(|c| c.begin_run());
    // A fault that cancels needs a token even when the caller passed none.
    let cancel: Option<CancelToken> = cfg
        .cancel
        .clone()
        .or_else(|| fault.cancel_on_iteration.map(|_| CancelToken::new()));

    let mode = cfg.parallel.resolve(g.num_vertices(), budget);
    if let Some(m) = &rm {
        m.threads.set(rayon::current_num_threads() as u64);
    }
    // Iterations run in waves; between waves the stop rule sees every
    // finished estimate through the streaming accumulator. A fixed rule
    // runs its whole count as a single wave — exactly the classic
    // schedule. An adaptive rule first runs up to its earliest possible
    // stopping point, then proceeds one check-interval at a time:
    // one iteration per wave for serial/inner modes, `num_threads`
    // iterations per wave for outer/hybrid so every worker keeps a
    // private table and a full complement of work between barriers.
    let check_interval = match mode {
        ParallelMode::OuterLoop | ParallelMode::Hybrid => rayon::current_num_threads().max(1),
        _ => 1,
    };
    // Outer-loop workers each hold a private set of live tables, so a
    // memory budget is split between them. A chaos squeeze halves (or
    // worse) the whole-run budget before the split, exercising the
    // dense→lazy→hashed degradation ladder under schedule control.
    let squeeze = chaos_run.as_ref().map_or(0, |c| c.budget_squeeze_shift());
    let gate = cfg.memory_budget_bytes.map(|limit| BudgetGate {
        limit: (limit >> squeeze) / check_interval.max(1),
        preferred: cfg.table,
    });

    type IterOk = (f64, usize, Option<EstIterStrata>);
    let run_attempt = |i: usize, inner: bool, seed: u64| -> Result<IterOk, CountError> {
        let iter_span = SpanTimer::start_opt(rm.as_ref().map(|m| &*m.iteration_ns));
        let iter_tspan = RunTrace::span_opt(tr.as_ref(), |t| t.iteration, i as u64);
        let iter_ph = RunProf::enter_opt(pr.as_ref(), |p| p.iteration);
        let iter_mph = RunMem::enter_opt(mm.as_ref(), |m| m.iteration);
        let col_span = SpanTimer::start_opt(rm.as_ref().map(|m| &*m.coloring_ns));
        let col_tspan = RunTrace::span_opt(tr.as_ref(), |t| t.coloring, i as u64);
        let col_ph = RunProf::enter_opt(pr.as_ref(), |p| p.coloring);
        let col_mph = RunMem::enter_opt(mm.as_ref(), |m| m.coloring);
        let coloring = random_coloring(g.num_vertices(), k, iteration_seed(seed, i as u64));
        drop(col_mph);
        drop(col_ph);
        drop(col_tspan);
        drop(col_span);
        // A scheduled DP stall rides the existing sleep hook so the slow
        // path through the kernel needs no extra plumbing.
        let mut eff_fault = fault;
        if let Some(d) = chaos_run.as_ref().and_then(|c| c.dp_stall(i)) {
            eff_fault.sleep_in_dp = Some(eff_fault.sleep_in_dp.map_or(d, |s| s + d));
        }
        let out = dispatch_iteration(
            g,
            labels,
            t,
            &pt,
            &ctx,
            &coloring,
            inner,
            cfg.kernel,
            cfg.table,
            gate.as_ref(),
            cancel.as_ref(),
            false,
            eff_fault,
            rm.as_ref(),
            tr.as_ref(),
            pr.as_ref(),
            mm.as_ref(),
            es.as_ref(),
        )?;
        drop(iter_mph);
        drop(iter_ph);
        drop(iter_tspan);
        drop(iter_span);
        if let Some(m) = rm.as_ref() {
            m.iterations_total.inc();
            if out.colorful_total != 0.0 {
                m.iterations_colorful.inc();
            }
            m.table.bytes_peak.set_max(out.peak_bytes as u64);
        }
        Ok((out.colorful_total, out.peak_bytes, out.est_strata))
    };
    let run_one = |i: usize, inner: bool| -> Result<IterOk, CountError> {
        if let Some(tok) = &cancel {
            if fault.cancel_on_iteration == Some(i) {
                tok.cancel();
            }
            if tok.is_cancelled() {
                return Err(CountError::Cancelled);
            }
        }
        let first = catch_unwind(AssertUnwindSafe(|| {
            if fault.panic_on_iteration == Some(i) {
                panic!("injected fault at iteration {i}");
            }
            if chaos_run.as_ref().is_some_and(|c| c.should_panic(i, 0)) {
                panic!("chaos: scheduled worker panic at iteration {i}");
            }
            run_attempt(i, inner, cfg.seed)
        }));
        match first {
            Ok(res) => res,
            Err(_poison) => {
                // The iteration body only touches per-iteration state, so
                // a panic poisons nothing shared: count it, retry once
                // with an independent coloring seed, and only a second
                // panic (a systematic bug, not a stray fault) propagates.
                if let Some(m) = rm.as_ref() {
                    m.iterations_poisoned.inc();
                    m.iterations_retried.inc();
                }
                RunTrace::instant_opt(tr.as_ref(), |t| t.panic_retry, i as u64);
                match catch_unwind(AssertUnwindSafe(|| {
                    if chaos_run.as_ref().is_some_and(|c| c.should_panic(i, 1)) {
                        panic!("chaos: scheduled worker panic at iteration {i} (retry)");
                    }
                    run_attempt(i, inner, cfg.seed ^ RETRY_SEED_SALT)
                })) {
                    Ok(res) => res,
                    Err(again) => resume_unwind(again),
                }
            }
        }
    };
    let flush_ordinal = std::cell::Cell::new(0u64);
    let flush_checkpoint = |raw: &[(f64, usize)]| -> Result<(), CountError> {
        let Some(ckcfg) = &cfg.checkpoint else {
            return Ok(());
        };
        let _flush_tspan =
            RunTrace::span_opt(tr.as_ref(), |t| t.checkpoint_flush, raw.len() as u64);
        let _flush_ph = RunProf::enter_opt(pr.as_ref(), |p| p.checkpoint_flush);
        let peak_one = raw.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let peak = match mode {
            ParallelMode::OuterLoop | ParallelMode::Hybrid => {
                peak_one * check_interval.min(raw.len()).max(1)
            }
            _ => peak_one,
        }
        .max(cfg.resume.as_ref().map_or(0, |ck| ck.peak_table_bytes));
        let ck = Checkpoint {
            seed: cfg.seed,
            colors: k,
            template_size: t.size(),
            graph_vertices: g.num_vertices(),
            graph_edges: g.num_edges(),
            rule: rule.clone(),
            per_iteration: raw.iter().map(|&(x, _)| x).collect(),
            peak_table_bytes: peak,
        };
        // The schedule can fail a flush before any bytes move; `op` is the
        // flush ordinal, so successive flushes roll independent faults.
        if let Some(cr) = chaos_run.as_ref() {
            let op = flush_ordinal.get();
            flush_ordinal.set(op + 1);
            if let Some(e) = cr.io_error(IoSite::CheckpointSave, op) {
                return Err(CountError::CheckpointWrite(e.to_string()));
            }
        }
        ck.save_opts(&ckcfg.path, ckcfg.durable)
            .map_err(|e| CountError::CheckpointWrite(e.to_string()))?;
        if let Some(m) = rm.as_ref() {
            m.checkpoint_writes.inc();
        }
        Ok(())
    };

    // Resilient runs (and resumed ones, via `done > 0`) keep every wave
    // short so cancellation latency and checkpoint staleness stay bounded;
    // without any of those features the schedule below reduces exactly to
    // the classic one.
    let resilient = cancel.is_some()
        || cfg.checkpoint.is_some()
        || cfg.chaos.is_some()
        || fault != FaultInjection::default();
    let mut stream = Welford::new();
    let mut raw: Vec<(f64, usize)> = Vec::with_capacity(resumed.len());
    // Running relative CI at the stop rule's critical value (NaN while
    // undefined), shared by the ledger feed for resumed and live
    // iterations.
    let rel_ci_now = |stream: &Welford| -> f64 {
        if stream.count() >= 2 && stream.mean() != 0.0 {
            stream.ci_half_width(rule.z()) / stream.mean().abs()
        } else {
            f64::NAN
        }
    };
    for &x in resumed {
        stream.push(x);
        if let Some(e) = es.as_ref() {
            // Resumed iterations re-enter the ledger (their root tables
            // are gone, so they carry no stratum decomposition).
            e.record_iteration(
                raw.len() as u64,
                x,
                stream.mean(),
                rel_ci_now(&stream),
                None,
                scale,
            );
        }
        raw.push((x, 0));
    }
    let resumed_iterations = resumed.len();
    // One status snapshot per wave barrier, shared by the progress line,
    // the heartbeat file, and the final report.
    let target_rel = match &rule {
        StopRule::RelativeError { epsilon, .. } => Some(*epsilon),
        _ => None,
    };
    let snapshot = |stream: &Welford, done: usize, cause: Option<StopCause>| ProgressSnapshot {
        done,
        budget,
        estimate: stream.mean(),
        ci_rel: (stream.count() >= 2 && stream.mean() != 0.0)
            .then(|| stream.ci_half_width(rule.z()) / stream.mean().abs()),
        target_rel,
        elapsed: start.elapsed(),
        stop_cause: cause,
    };
    let mut cause = StopCause::Completed;
    let mut waves_since_flush = 0usize;
    loop {
        let done = raw.len();
        // A resumed run may already be complete or converged.
        if done >= budget {
            break;
        }
        if done > 0 && rule.satisfied(&stream) {
            cause = StopCause::Converged;
            break;
        }
        let target = if done == 0 && !resilient {
            rule.min_iterations().clamp(1, budget)
        } else {
            (done + check_interval).min(budget)
        };
        let wave_tspan = RunTrace::span_opt(tr.as_ref(), |t| t.wave, (target - done) as u64);
        let wave_ph = RunProf::enter_opt(pr.as_ref(), |p| p.wave);
        let wave: Vec<Result<IterOk, CountError>> = match mode {
            ParallelMode::OuterLoop => (done..target)
                .into_par_iter()
                .map(|i| run_one(i, false))
                .collect(),
            ParallelMode::Hybrid => (done..target)
                .into_par_iter()
                .map(|i| run_one(i, true))
                .collect(),
            ParallelMode::InnerLoop => (done..target).map(|i| run_one(i, true)).collect(),
            _ => (done..target).map(|i| run_one(i, false)).collect(),
        };
        drop(wave_ph);
        drop(wave_tspan);
        // A cancelled wave is discarded whole, so the surviving series is
        // always the contiguous iteration prefix a checkpoint describes.
        let cancelled = cancel.as_ref().is_some_and(|c| c.is_cancelled())
            || wave.iter().any(|r| matches!(r, Err(CountError::Cancelled)));
        if cancelled {
            cause = cancel
                .as_ref()
                .and_then(|c| c.cause())
                .unwrap_or(StopCause::Cancelled);
            RunTrace::instant_opt(tr.as_ref(), |t| t.cancelled, raw.len() as u64);
            break;
        }
        for r in wave {
            let (c, b, strata) = r?;
            let x = c / scale;
            stream.push(x);
            if let Some(e) = es.as_ref() {
                e.record_iteration(
                    raw.len() as u64,
                    x,
                    stream.mean(),
                    rel_ci_now(&stream),
                    strata.as_ref(),
                    scale,
                );
            }
            raw.push((x, b));
        }
        if let Some(m) = &rm {
            if rule.is_adaptive() {
                m.adaptive_checks.inc();
                m.adaptive_estimate
                    .set(stream.mean().max(0.0).round() as u64);
                m.adaptive_ci
                    .set(stream.ci_half_width(rule.z()).round() as u64);
            }
        }
        if let Some(t) = tr.as_ref() {
            if rule.is_adaptive() {
                if let Some(ci_rel) = snapshot(&stream, raw.len(), None).ci_rel {
                    t.tracer
                        .sample(t.adaptive_ci, (ci_rel * 1000.0).round() as u64);
                }
            }
        }
        if let Some(p) = &cfg.progress {
            p.wave(&snapshot(&stream, raw.len(), None));
        }
        if let Some(ckcfg) = &cfg.checkpoint {
            waves_since_flush += 1;
            if waves_since_flush >= ckcfg.every_waves.max(1) {
                waves_since_flush = 0;
                flush_checkpoint(&raw)?;
            }
        }
        if rule.satisfied(&stream) {
            if raw.len() < budget {
                cause = StopCause::Converged;
            }
            break;
        }
        if raw.len() >= budget {
            break;
        }
    }
    // The final flush runs however the loop ended, so even an
    // immediately-cancelled run leaves a valid (possibly zero-iteration)
    // resume file behind. The progress reporter likewise always sees the
    // terminal snapshot (and terminates its stderr line).
    flush_checkpoint(&raw)?;
    if let Some(ckcfg) = &cfg.checkpoint {
        // A `.tmp` sibling can only be a stale staging file from a process
        // that died between write and rename; this run's own writes either
        // renamed it away or removed it on failure. Sweep it so the run
        // directory ends clean on normal exit and on Ctrl-C alike.
        let _ = std::fs::remove_file(crate::resilience::tmp_sibling(&ckcfg.path));
    }
    if let Some(p) = &cfg.progress {
        p.finish(&snapshot(&stream, raw.len(), Some(cause)));
    }
    if raw.is_empty() {
        return Err(CountError::Cancelled);
    }
    let executed = raw.len() - resumed_iterations;
    let iters = raw.len();
    if let Some(m) = &rm {
        if rule.is_adaptive() && !cause.is_partial() {
            m.iterations_saved.add((budget - raw.len()) as u64);
        }
    }
    let per_iteration: Vec<f64> = raw.iter().map(|&(x, _)| x).collect();
    // Outer-loop parallelism multiplies live tables by the worker count.
    let peak_one = raw.iter().map(|&(_, b)| b).max().unwrap_or(0);
    let peak_table_bytes = match mode {
        ParallelMode::OuterLoop | ParallelMode::Hybrid => {
            peak_one * rayon::current_num_threads().min(iters).max(1)
        }
        _ => peak_one,
    }
    .max(cfg.resume.as_ref().map_or(0, |ck| ck.peak_table_bytes));
    let elapsed = start.elapsed();
    // The batch statistics reproduce the streaming ones; computing them
    // from the series keeps `estimate` bitwise identical to the
    // pre-adaptive mean-of-series expression.
    let stats = EstimateStats::from_series(&per_iteration);
    Ok(CountResult {
        estimate: stats.mean,
        per_iteration,
        iterations_run: iters,
        std_error: stats.std_error,
        ci95: stats.ci95_half_width,
        peak_table_bytes,
        elapsed,
        per_iteration_time: elapsed / executed.max(1) as u32,
        automorphisms: alpha,
        colorful_probability: p,
        stop_cause: cause,
        resumed_iterations,
    })
}

/// Precomputed combinatorial context shared by all iterations of a run.
pub(crate) struct DpContext {
    pub(crate) k: usize,
    pub(crate) binom: BinomialTable,
    /// `nc[h]` = `C(k, h)`.
    pub(crate) nc: Vec<usize>,
    /// Split tables per (subtemplate size, active size), for active > 1.
    pub(crate) splits: HashMap<(u8, u8), SplitTable>,
    /// Position-major transposes of `splits`, the index layout of the
    /// vectorized kernel's flat multiply-accumulate.
    pub(crate) pos_splits: HashMap<(u8, u8), PositionSplitTable>,
    /// Removal tables per subtemplate size `h`: entry `[I * k + c]` is the
    /// CNS index of the (h-1)-set `C_I \ {c}`, or -1 when `c ∉ C_I`. Used
    /// for single-vertex active children.
    pub(crate) removals: HashMap<u8, Vec<i32>>,
    /// Bytes held by the index tables (counted into peak memory, §III-B).
    index_bytes: usize,
}

impl DpContext {
    pub(crate) fn new(t: &Template, pt: &PartitionTree, k: usize) -> Self {
        let binom = BinomialTable::new(fascia_combin::MAX_COLORS.max(k));
        let nc: Vec<usize> = (0..=k).map(|h| binom.get(k, h) as usize).collect();
        let mut splits = HashMap::new();
        let mut removals: HashMap<u8, Vec<i32>> = HashMap::new();
        let mut index_bytes = 0usize;
        for &idx in pt.unique_order() {
            let node = &pt.nodes()[idx as usize];
            if let NodeKind::Cut { active, .. } = node.kind {
                let h = node.size;
                let a = pt.nodes()[active as usize].size;
                if a == 1 {
                    removals
                        .entry(h)
                        .or_insert_with(|| build_removal_table(k, h as usize, &binom));
                } else {
                    splits
                        .entry((h, a))
                        .or_insert_with(|| SplitTable::new(k, h as usize, a as usize, &binom));
                }
            }
        }
        let _ = t;
        let pos_splits: HashMap<(u8, u8), PositionSplitTable> = splits
            .iter()
            .map(|(&key, s)| (key, PositionSplitTable::new(s)))
            .collect();
        for s in splits.values() {
            index_bytes += s.bytes();
        }
        for p in pos_splits.values() {
            index_bytes += p.bytes();
        }
        for r in removals.values() {
            index_bytes += r.capacity() * std::mem::size_of::<i32>();
        }
        Self {
            k,
            binom,
            nc,
            splits,
            pos_splits,
            removals,
            index_bytes,
        }
    }
}

/// Builds the removal table for size `h`: for each `h`-set index and each
/// color, the index of the set minus that color (or -1).
fn build_removal_table(k: usize, h: usize, binom: &BinomialTable) -> Vec<i32> {
    let nc = binom.get(k, h) as usize;
    let mut rem = vec![-1i32; nc * k];
    let mut sets = ColorSetIter::new(k, h);
    let mut idx = 0usize;
    let mut reduced = Vec::with_capacity(h.saturating_sub(1));
    while let Some(set) = sets.next() {
        for (pos, &c) in set.iter().enumerate() {
            reduced.clear();
            reduced.extend(
                set.iter()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, &x)| x),
            );
            rem[idx * k + c as usize] = fascia_combin::index_of_set(&reduced, binom) as i32;
        }
        idx += 1;
    }
    rem
}

/// Per-worker memory-budget gate (DESIGN.md §11): before each subtemplate
/// table is built, its footprint is projected for every layout on
/// [`TableKind::ladder`] and the first one that fits next to the
/// already-live DP state is used. Degradation is monotone (dense → lazy →
/// hashed); only when even the hashed layout cannot fit does the run fail.
pub(crate) struct BudgetGate {
    /// Live-byte cap for one worker's DP state.
    pub(crate) limit: usize,
    /// The layout the run asked for — the top of the ladder.
    pub(crate) preferred: TableKind,
}

impl BudgetGate {
    /// Picks the first layout on the ladder whose projected footprint fits
    /// beside `live_bytes` of already-held state. Takes the row shape as
    /// counts (`active` rows, `live` non-zero entries) so both row-vector
    /// and arena-batch producers can feed it.
    fn choose(
        &self,
        n: usize,
        nc: usize,
        active: usize,
        live: usize,
        live_bytes: usize,
        rm: Option<&RunMetrics>,
    ) -> Result<TableKind, CountError> {
        let remaining = self.limit.saturating_sub(live_bytes);
        let mut required = 0;
        for (steps, &kind) in self.preferred.ladder().iter().enumerate() {
            required = projected_bytes(kind, n, nc, active, live);
            if required <= remaining {
                if steps > 0 {
                    if let Some(m) = rm {
                        m.degrade_fallbacks.add(steps as u64);
                    }
                }
                return Ok(kind);
            }
        }
        // Every ladder ends at the hashed layout, so `required` holds its
        // projection when nothing fit.
        Err(CountError::BudgetExceeded {
            required: live_bytes + required,
            budget: self.limit,
        })
    }
}

/// One stored child: either a virtual single-vertex subtemplate (counts
/// read off the coloring) or a materialized table.
pub(crate) enum Stored<T> {
    Single { label: Option<u8> },
    Table(T),
}

struct IterationOutput {
    colorful_total: f64,
    peak_bytes: usize,
    root_row_sums: Option<Vec<f64>>,
    est_strata: Option<EstIterStrata>,
}

/// Records the flight-recorder instants for one materialized DP table: a
/// `table.build` with the table's byte size, plus a `table.fallback` with
/// the number of ladder steps the budget gate descended whenever the
/// chosen layout differs from the preferred one.
#[inline]
fn record_table_trace(
    tr: Option<&RunTrace>,
    gated: bool,
    preferred: TableKind,
    chosen: TableKind,
    bytes: usize,
) {
    let Some(t) = tr else { return };
    t.tracer.instant(t.table_build, bytes as u64);
    if gated && chosen != preferred {
        let steps = preferred
            .ladder()
            .iter()
            .position(|&k| k == chosen)
            .unwrap_or(0) as u64;
        t.tracer.instant(t.table_fallback, steps);
    }
}

/// Monomorphization dispatch on the table layout. Budgeted runs pick a
/// layout per subtemplate at run time, so they go through the
/// layout-erased [`AnyTable`] instead of a concrete monomorphization.
#[allow(clippy::too_many_arguments)]
fn dispatch_iteration(
    g: &Graph,
    labels: Option<&[u8]>,
    t: &Template,
    pt: &PartitionTree,
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
    kernel: KernelKind,
    kind: TableKind,
    gate: Option<&BudgetGate>,
    cancel: Option<&CancelToken>,
    want_row_sums: bool,
    fault: FaultInjection,
    rm: Option<&RunMetrics>,
    tr: Option<&RunTrace>,
    pr: Option<&RunProf>,
    mm: Option<&RunMem>,
    es: Option<&RunEst>,
) -> Result<IterationOutput, CountError> {
    if gate.is_some() {
        return run_iteration::<AnyTable>(
            g,
            labels,
            t,
            pt,
            ctx,
            coloring,
            inner_parallel,
            kernel,
            kind,
            gate,
            cancel,
            want_row_sums,
            fault,
            rm,
            tr,
            pr,
            mm,
            es,
        );
    }
    match kind {
        TableKind::Dense => run_iteration::<DenseTable>(
            g,
            labels,
            t,
            pt,
            ctx,
            coloring,
            inner_parallel,
            kernel,
            kind,
            None,
            cancel,
            want_row_sums,
            fault,
            rm,
            tr,
            pr,
            mm,
            es,
        ),
        TableKind::Lazy => run_iteration::<LazyTable>(
            g,
            labels,
            t,
            pt,
            ctx,
            coloring,
            inner_parallel,
            kernel,
            kind,
            None,
            cancel,
            want_row_sums,
            fault,
            rm,
            tr,
            pr,
            mm,
            es,
        ),
        TableKind::Hash => run_iteration::<HashCountTable>(
            g,
            labels,
            t,
            pt,
            ctx,
            coloring,
            inner_parallel,
            kernel,
            kind,
            None,
            cancel,
            want_row_sums,
            fault,
            rm,
            tr,
            pr,
            mm,
            es,
        ),
    }
}

/// Runs one full bottom-up DP pass for one coloring (Alg. 2).
#[allow(clippy::too_many_arguments)]
fn run_iteration<T: CountTable>(
    g: &Graph,
    labels: Option<&[u8]>,
    t: &Template,
    pt: &PartitionTree,
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
    kernel: KernelKind,
    preferred: TableKind,
    gate: Option<&BudgetGate>,
    cancel: Option<&CancelToken>,
    want_row_sums: bool,
    fault: FaultInjection,
    rm: Option<&RunMetrics>,
    tr: Option<&RunTrace>,
    pr: Option<&RunProf>,
    mm: Option<&RunMem>,
    es: Option<&RunEst>,
) -> Result<IterationOutput, CountError> {
    let n = g.num_vertices();
    let mut stored: Vec<Option<Stored<T>>> = Vec::new();
    stored.resize_with(pt.num_canon_classes(), || None);
    let mut uses = pt.class_use_counts();
    // Maps canon class → the partition node that built its table, so
    // fascia-mem/1 can attribute a table's lifetime access counters when
    // it is released (tables accumulate reads until their last consumer).
    let mut class_node: Vec<Option<usize>> = vec![None; pt.num_canon_classes()];
    let mut live_bytes = ctx.index_bytes + coloring.len();
    let mut peak_bytes = live_bytes;
    // The paper's naive memory scheme materializes single-vertex
    // subtemplate tables too (Alg. 2 line 4 writes them). The improved
    // read path never touches them, but the Dense ("naive") layout pays
    // for the allocation — reproduced here so Fig. 6's comparison is
    // faithful. `ghost_singles` holds those allocations until their class
    // is released. Under a memory budget the whole point is not to
    // allocate what the DP never reads, so the gate suppresses them.
    let materialize_ghosts = preferred == TableKind::Dense && gate.is_none();
    let mut ghost_singles: Vec<Option<T>> = Vec::new();
    ghost_singles.resize_with(pt.num_canon_classes(), || None);
    let pick = |rows: &Rows, nc: usize, live_bytes: usize| -> Result<TableKind, CountError> {
        match gate {
            Some(gate) => {
                let active = rows.iter().filter(|r| r.is_some()).count();
                let live: usize = rows
                    .iter()
                    .flatten()
                    .map(|r| r.iter().filter(|&&x| x != 0.0).count())
                    .sum();
                gate.choose(n, nc, active, live, live_bytes, rm)
            }
            None => Ok(preferred),
        }
    };

    for &idx in pt.unique_order() {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return Err(CountError::Cancelled);
        }
        let node = &pt.nodes()[idx as usize];
        let cid = node.canon_id as usize;
        let _node_span = SpanTimer::start_opt(rm.and_then(|m| m.node_ns[idx as usize].as_deref()));
        let _node_tspan = RunTrace::node_span_opt(tr, idx as usize);
        let _node_ph = RunProf::node_enter_opt(pr, idx as usize);
        let _node_mph = RunMem::node_enter_opt(mm, idx as usize);
        if let Some(d) = fault.sleep_in_dp {
            std::thread::sleep(d);
        }
        match node.kind {
            NodeKind::Vertex => {
                let label = labels.map(|_| t.label(node.root));
                if materialize_ghosts {
                    let k = ctx.k;
                    let rows: Rows = (0..n)
                        .map(|v| {
                            let mut row = vec![0.0f64; k].into_boxed_slice();
                            let ok = match (label, labels) {
                                (Some(l), Some(gl)) => gl[v] == l,
                                _ => true,
                            };
                            if ok {
                                row[coloring[v] as usize] = 1.0;
                            }
                            Some(row)
                        })
                        .collect();
                    let table = T::from_rows(n, k, rows);
                    live_bytes += table.bytes();
                    peak_bytes = peak_bytes.max(live_bytes);
                    if let Some(m) = rm {
                        m.table.record(&table);
                    }
                    ghost_singles[cid] = Some(table);
                    class_node[cid] = Some(idx as usize);
                }
                stored[cid] = Some(Stored::Single { label });
            }
            NodeKind::Triangle { partners } => {
                let rows = triangle_rows_for(
                    g,
                    labels,
                    t,
                    node,
                    partners,
                    ctx,
                    coloring,
                    inner_parallel,
                    None,
                    cancel,
                    rm.map(|m| &m.triangle),
                );
                let kind = pick(&rows, ctx.nc[3], live_bytes)?;
                let table = {
                    let _bph = RunProf::enter_opt(pr, |p| p.table_build);
                    T::from_rows_kind(kind, n, ctx.nc[3], rows)
                };
                record_table_trace(tr, gate.is_some(), preferred, kind, table.bytes());
                live_bytes += table.bytes();
                peak_bytes = peak_bytes.max(live_bytes);
                if let Some(m) = rm {
                    m.table.record(&table);
                }
                stored[cid] = Some(Stored::Table(table));
                class_node[cid] = Some(idx as usize);
            }
            NodeKind::Cut { active, passive } => {
                let a_node = &pt.nodes()[active as usize];
                let p_node = &pt.nodes()[passive as usize];
                let a_cid = a_node.canon_id as usize;
                let p_cid = p_node.canon_id as usize;
                let nc_h = ctx.nc[node.size as usize];
                let table = {
                    let act = stored[a_cid].as_ref().expect("active child computed");
                    let pas = if p_cid == a_cid {
                        act
                    } else {
                        stored[p_cid].as_ref().expect("passive child computed")
                    };
                    match kernel {
                        KernelKind::Vectorized => {
                            let kph = RunProf::enter_opt(pr, |p| p.kernel_vectorized);
                            let batch = cut_batch(
                                g,
                                labels,
                                node,
                                a_node,
                                p_node,
                                act,
                                pas,
                                ctx,
                                coloring,
                                inner_parallel,
                                cancel,
                                rm.map(|m| &m.cut),
                            );
                            drop(kph);
                            let kind = match gate {
                                Some(gate) => gate.choose(
                                    n,
                                    nc_h,
                                    batch.active_rows(),
                                    batch.live_entries(),
                                    live_bytes,
                                    rm,
                                )?,
                                None => preferred,
                            };
                            let _bph = RunProf::enter_opt(pr, |p| p.table_build);
                            T::from_batch_kind(kind, batch)
                        }
                        KernelKind::Scalar => {
                            let kph = RunProf::enter_opt(pr, |p| p.kernel_scalar);
                            let rows = cut_rows_for(
                                g,
                                labels,
                                node,
                                a_node,
                                p_node,
                                act,
                                pas,
                                ctx,
                                coloring,
                                inner_parallel,
                                None,
                                cancel,
                                rm.map(|m| &m.cut),
                            );
                            drop(kph);
                            let kind = pick(&rows, nc_h, live_bytes)?;
                            let _bph = RunProf::enter_opt(pr, |p| p.table_build);
                            T::from_rows_kind(kind, n, nc_h, rows)
                        }
                    }
                };
                record_table_trace(tr, gate.is_some(), preferred, table.kind(), table.bytes());
                live_bytes += table.bytes();
                peak_bytes = peak_bytes.max(live_bytes);
                if let Some(m) = rm {
                    m.table.record(&table);
                }
                stored[cid] = Some(Stored::Table(table));
                class_node[cid] = Some(idx as usize);
                // Release children that have no remaining consumers.
                for child_cid in [a_cid, p_cid] {
                    uses[child_cid] -= 1;
                    if uses[child_cid] == 0 && child_cid != cid {
                        if let Some(Stored::Table(old)) = stored[child_cid].take() {
                            if let Some(ci) = class_node[child_cid] {
                                RunMem::record_node(mm, ci, &old);
                            }
                            live_bytes -= old.bytes();
                        }
                        if let Some(ghost) = ghost_singles[child_cid].take() {
                            if let Some(ci) = class_node[child_cid] {
                                RunMem::record_node(mm, ci, &ghost);
                            }
                            live_bytes -= ghost.bytes();
                        }
                    }
                }
            }
        }
    }

    // An inner loop that bailed early on cancellation leaves truncated
    // rows behind; the iteration must be discarded, not aggregated.
    if cancel.is_some_and(|c| c.is_cancelled()) {
        return Err(CountError::Cancelled);
    }

    // Final aggregation (Alg. 2, line 20).
    let root_cid = pt.root().canon_id as usize;
    let (colorful_total, root_row_sums) =
        match stored[root_cid].as_ref().expect("root table computed") {
            Stored::Single { label } => {
                // Single-vertex template: each matching vertex is one embedding.
                let sums: Vec<f64> = (0..n)
                    .map(|v| match (label, labels) {
                        (Some(l), Some(gl)) => (gl[v] == *l) as u8 as f64,
                        _ => 1.0,
                    })
                    .collect();
                let total = sums.iter().sum();
                (total, want_row_sums.then_some(sums))
            }
            Stored::Table(table) => {
                let total = table.total();
                let sums = want_row_sums.then(|| {
                    (0..n)
                        .map(|v| match table.row_slice(v) {
                            Some(row) => row.iter().sum::<f64>(),
                            None => (0..table.num_colorsets()).map(|cs| table.get(v, cs)).sum(),
                        })
                        .collect()
                });
                (total, sums)
            }
        };

    // Estimator-observability stratum capture: re-read the root table
    // (read-only, after the aggregation above) and split its total by the
    // root vertex's assigned color and by its degree class. Color is the
    // stratum key (not the root table's colorset columns — the root
    // subtemplate spans all k colors, so that dimension is always a
    // single column). Purely additional reads — `colorful_total` is
    // already fixed, so attaching an estimator collector cannot perturb
    // the count.
    let est_strata = es.map(|e| {
        let mut by_class = vec![0.0f64; e.num_classes];
        let mut by_color = vec![0.0f64; ctx.k];
        match stored[root_cid].as_ref().expect("root table computed") {
            Stored::Single { label } => {
                for v in 0..n {
                    let ok = match (label, labels) {
                        (Some(l), Some(gl)) => gl[v] == *l,
                        _ => true,
                    };
                    if ok {
                        by_color[coloring[v] as usize] += 1.0;
                        by_class[e.deg_class[v] as usize] += 1.0;
                    }
                }
            }
            Stored::Table(table) => {
                for v in 0..n {
                    let row_sum = match table.row_slice(v) {
                        Some(row) => row.iter().sum::<f64>(),
                        None => (0..table.num_colorsets()).map(|cs| table.get(v, cs)).sum(),
                    };
                    if row_sum != 0.0 {
                        by_color[coloring[v] as usize] += row_sum;
                        by_class[e.deg_class[v] as usize] += row_sum;
                    }
                }
            }
        };
        EstIterStrata {
            by_colorset: by_color,
            by_class,
        }
    });

    // Record tables still alive at the end of the iteration (the root and
    // any stragglers kept by the use-count discipline). Doing it after
    // aggregation means the root's access counters include the final
    // `total()`/row reads — the table's complete lifetime.
    if mm.is_some() {
        for (cid, slot) in stored.iter().enumerate() {
            if let (Some(Stored::Table(table)), Some(ci)) = (slot, class_node[cid]) {
                RunMem::record_node(mm, ci, table);
            }
            if let (Some(ghost), Some(ci)) = (ghost_singles[cid].as_ref(), class_node[cid]) {
                RunMem::record_node(mm, ci, ghost);
            }
        }
    }

    Ok(IterationOutput {
        colorful_total,
        peak_bytes,
        root_row_sums,
        est_strata,
    })
}

/// Base-case rows for a triangle subtemplate rooted at `node.root`:
/// ordered neighbor pairs (u, w) of v that close a triangle with distinct
/// colors and matching labels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn triangle_rows(
    g: &Graph,
    labels: Option<&[u8]>,
    t: &Template,
    node: &SubNode,
    partners: [u8; 2],
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
) -> Rows {
    triangle_rows_for(
        g,
        labels,
        t,
        node,
        partners,
        ctx,
        coloring,
        inner_parallel,
        None,
        None,
        None,
    )
}

/// As [`triangle_rows`], restricted to `targets` when given (used by the
/// distributed simulation to compute only rank-owned vertices), with
/// optional base-case instrumentation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn triangle_rows_for(
    g: &Graph,
    labels: Option<&[u8]>,
    t: &Template,
    node: &SubNode,
    partners: [u8; 2],
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
    targets: Option<&[u32]>,
    cancel: Option<&CancelToken>,
    tm: Option<&TriangleMetrics>,
) -> Rows {
    let nc = ctx.nc[3];
    let want = labels.map(|gl| {
        (
            gl,
            t.label(node.root),
            t.label(partners[0]),
            t.label(partners[1]),
        )
    });
    let binom = &ctx.binom;
    let compute = |v: usize| -> Option<Box<[f64]>> {
        // Cheap cooperative cancellation poll: one mask test per vertex,
        // one atomic load per POLL_INTERVAL vertices. A bailed-out loop
        // yields truncated rows, which the caller discards.
        if v & (POLL_INTERVAL - 1) == 0 && cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        if let Some((gl, lr, _, _)) = want {
            if gl[v] != lr {
                return None;
            }
        }
        let cv = coloring[v];
        let neigh = g.neighbors(v);
        let mut row: Option<Box<[f64]>> = None;
        // Colorful-hit accounting for the base case: closures examined at
        // the w level vs. those whose three colors are distinct.
        let mut cand = 0u64;
        let mut hits = 0u64;
        // For each neighbor u, walk the sorted intersection N(v) ∩ N(u):
        // each common neighbor w closes the triangle (v, u, w). Ordered
        // (u, w) pairs are needed because the two template partners may
        // carry different labels.
        for &u in neigh {
            if let Some((gl, _, lu, _)) = want {
                if gl[u as usize] != lu {
                    continue;
                }
            }
            let cu = coloring[u as usize];
            if cu == cv {
                continue;
            }
            let nu = g.neighbors(u as usize);
            let (mut i, mut j) = (0usize, 0usize);
            while i < neigh.len() && j < nu.len() {
                match neigh[i].cmp(&nu[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = neigh[i];
                        i += 1;
                        j += 1;
                        if w == u {
                            continue;
                        }
                        if let Some((gl, _, _, lw)) = want {
                            if gl[w as usize] != lw {
                                continue;
                            }
                        }
                        let cw = coloring[w as usize];
                        cand += 1;
                        if cw == cv || cw == cu {
                            continue;
                        }
                        hits += 1;
                        let mut set = [cv, cu, cw];
                        set.sort_unstable();
                        let idx = fascia_combin::index_of_set(&set, binom);
                        row.get_or_insert_with(|| vec![0.0; nc].into_boxed_slice())[idx] += 1.0;
                    }
                }
            }
        }
        if let Some(tm) = tm {
            if cand != 0 {
                tm.candidates.add(cand);
                tm.colorful.add(hits);
            }
        }
        row
    };
    match targets {
        Some(list) => {
            let mut rows: Rows = Vec::new();
            rows.resize_with(g.num_vertices(), || None);
            for &v in list {
                rows[v as usize] = compute(v as usize);
            }
            rows
        }
        None if inner_parallel => (0..g.num_vertices()).into_par_iter().map(compute).collect(),
        None => (0..g.num_vertices()).map(compute).collect(),
    }
}

/// Read access to the active child's counts at a fixed vertex.
enum ActRow<'a, T: CountTable> {
    Slice(&'a [f64]),
    Indirect(&'a T, usize),
}

impl<'a, T: CountTable> ActRow<'a, T> {
    #[inline]
    fn get(&self, cs: usize) -> f64 {
        match self {
            ActRow::Slice(s) => s[cs],
            ActRow::Indirect(t, v) => t.get(*v, cs),
        }
    }
}

/// Rows for a cut subtemplate: the factored DP
/// `row[C] = Σ_{Ca ⊎ Cp = C} act(v, Ca) · (Σ_u pas(u, Cp))`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cut_rows<T: CountTable>(
    g: &Graph,
    labels: Option<&[u8]>,
    node: &SubNode,
    a_node: &SubNode,
    p_node: &SubNode,
    act: &Stored<T>,
    pas: &Stored<T>,
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
) -> Rows {
    cut_rows_for(
        g,
        labels,
        node,
        a_node,
        p_node,
        act,
        pas,
        ctx,
        coloring,
        inner_parallel,
        None,
        None,
        None,
    )
}

/// As [`cut_rows`], restricted to `targets` when given, with optional
/// initialized-check instrumentation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cut_rows_for<T: CountTable>(
    g: &Graph,
    labels: Option<&[u8]>,
    node: &SubNode,
    a_node: &SubNode,
    p_node: &SubNode,
    act: &Stored<T>,
    pas: &Stored<T>,
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
    targets: Option<&[u32]>,
    cancel: Option<&CancelToken>,
    cm: Option<&CutMetrics>,
) -> Rows {
    let h = node.size as usize;
    let a = a_node.size as usize;
    let p = p_node.size as usize;
    let nc_h = ctx.nc[h];
    let nc_p = ctx.nc[p];
    let k = ctx.k;
    let rem = if a == 1 {
        Some(&ctx.removals[&node.size][..])
    } else {
        None
    };
    let split = if a > 1 {
        Some(&ctx.splits[&(node.size, a_node.size)])
    } else {
        None
    };

    let compute = |pas_acc: &mut Vec<f64>, v: usize| -> Option<Box<[f64]>> {
        // Cooperative cancellation poll (see `triangle_rows_for`).
        if v & (POLL_INTERVAL - 1) == 0 && cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        // Active availability at v — the paper's "initialized" check.
        let act_row: Option<ActRow<T>> = match act {
            Stored::Single { label } => {
                if let (Some(l), Some(gl)) = (label, labels) {
                    if gl[v] != *l {
                        if let Some(c) = cm {
                            c.roots_skipped.inc();
                        }
                        return None;
                    }
                }
                None
            }
            Stored::Table(tb) => {
                if !tb.vertex_active(v) {
                    if let Some(c) = cm {
                        c.roots_skipped.inc();
                    }
                    return None;
                }
                Some(match tb.row_slice(v) {
                    Some(s) => ActRow::Slice(s),
                    None => ActRow::Indirect(tb, v),
                })
            }
        };
        if let Some(c) = cm {
            c.roots_visited.inc();
        }

        // Accumulate passive rows over the neighborhood.
        pas_acc.clear();
        pas_acc.resize(nc_p, 0.0);
        let mut any = false;
        // Neighbor-level initialized-check accounting, batched into locals
        // and flushed once per vertex.
        let mut nbr_visited = 0u64;
        let mut nbr_skipped = 0u64;
        match pas {
            Stored::Single { label } => {
                for &u in g.neighbors(v) {
                    let u = u as usize;
                    if let (Some(l), Some(gl)) = (label, labels) {
                        if gl[u] != *l {
                            nbr_skipped += 1;
                            continue;
                        }
                    }
                    // Singleton color sets rank as their color value.
                    pas_acc[coloring[u] as usize] += 1.0;
                    nbr_visited += 1;
                    any = true;
                }
            }
            Stored::Table(tb) => {
                for &u in g.neighbors(v) {
                    let u = u as usize;
                    if !tb.vertex_active(u) {
                        nbr_skipped += 1;
                        continue;
                    }
                    nbr_visited += 1;
                    any = true;
                    match tb.row_slice(u) {
                        Some(s) => {
                            for (acc, &x) in pas_acc.iter_mut().zip(s) {
                                *acc += x;
                            }
                        }
                        None => {
                            for (cs, acc) in pas_acc.iter_mut().enumerate() {
                                *acc += tb.get(u, cs);
                            }
                        }
                    }
                }
            }
        }
        if let Some(c) = cm {
            if nbr_visited != 0 {
                c.neighbors_visited.add(nbr_visited);
            }
            if nbr_skipped != 0 {
                c.neighbors_skipped.add(nbr_skipped);
            }
        }
        if !any {
            return None;
        }

        // Combine.
        let mut row = vec![0.0f64; nc_h].into_boxed_slice();
        let mut nonzero = false;
        match (&act_row, rem, split) {
            (None, Some(rem), _) => {
                // Active is the bare root vertex: the only live color set
                // for it is {color(v)} — look up C \ {color(v)} directly.
                let cv = coloring[v] as usize;
                for (i, slot) in row.iter_mut().enumerate() {
                    let r = rem[i * k + cv];
                    if r >= 0 {
                        let val = pas_acc[r as usize];
                        if val != 0.0 {
                            *slot = val;
                            nonzero = true;
                        }
                    }
                }
            }
            (Some(act_row), _, Some(split)) => {
                for (i, slot) in row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for sp in split.splits(i) {
                        let a_val = act_row.get(sp.active as usize);
                        if a_val != 0.0 {
                            acc += a_val * pas_acc[sp.passive as usize];
                        }
                    }
                    if acc != 0.0 {
                        *slot = acc;
                        nonzero = true;
                    }
                }
            }
            _ => unreachable!("active-single uses removals; larger actives use splits"),
        }
        if nonzero {
            Some(row)
        } else {
            None
        }
    };

    match targets {
        Some(list) => {
            let mut rows: Rows = Vec::new();
            rows.resize_with(g.num_vertices(), || None);
            let mut scratch = Vec::new();
            for &v in list {
                rows[v as usize] = compute(&mut scratch, v as usize);
            }
            rows
        }
        None if inner_parallel => (0..g.num_vertices())
            .into_par_iter()
            .map_init(Vec::new, |scratch, v| compute(scratch, v))
            .collect(),
        None => {
            let mut scratch = Vec::new();
            (0..g.num_vertices())
                .map(|v| compute(&mut scratch, v))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{count_exact, count_exact_labeled};
    use fascia_graph::gen::{gnm, random_connected};
    use fascia_graph::random_labels;
    use fascia_template::NamedTemplate;

    fn cfg(iterations: usize) -> CountConfig {
        CountConfig {
            iterations,
            parallel: ParallelMode::Serial,
            seed: 1234,
            ..CountConfig::default()
        }
    }

    /// Estimates must converge to the exact count on small inputs.
    #[test]
    fn converges_to_exact_for_small_templates() {
        let g = gnm(60, 170, 7);
        for t in [
            Template::path(3),
            Template::path(4),
            Template::star(4),
            Template::spider(&[1, 1, 2]),
        ] {
            let exact = count_exact(&g, &t) as f64;
            let r = count_template(&g, &t, &cfg(800)).unwrap();
            let rel = (r.estimate - exact).abs() / exact.max(1.0);
            assert!(
                rel < 0.08,
                "template {t:?}: estimate {} vs exact {exact} (rel {rel})",
                r.estimate
            );
        }
    }

    #[test]
    fn converges_on_triangle_template() {
        let g = gnm(40, 150, 3);
        let t = Template::triangle();
        let exact = count_exact(&g, &t) as f64;
        assert!(exact > 0.0, "test graph needs triangles");
        let r = count_template(&g, &t, &cfg(1200)).unwrap();
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel < 0.1, "estimate {} vs exact {exact}", r.estimate);
    }

    #[test]
    fn converges_on_triangle_with_pendant() {
        let g = gnm(40, 150, 19);
        let t = Template::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        let exact = count_exact(&g, &t) as f64;
        assert!(exact > 0.0);
        let r = count_template(&g, &t, &cfg(1200)).unwrap();
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel < 0.12, "estimate {} vs exact {exact}", r.estimate);
    }

    /// All three table layouts must produce bitwise-identical estimates.
    #[test]
    fn table_kinds_agree_exactly() {
        let g = gnm(50, 160, 21);
        let t = NamedTemplate::U5_2.template();
        let base = cfg(5);
        let mut results = Vec::new();
        for kind in TableKind::all() {
            let mut c = base.clone();
            c.table = kind;
            results.push(count_template(&g, &t, &c).unwrap().per_iteration);
        }
        assert_eq!(results[0], results[1], "dense vs lazy");
        assert_eq!(results[0], results[2], "dense vs hash");
    }

    /// Both partition strategies count the same thing.
    #[test]
    fn strategies_agree_exactly() {
        let g = gnm(50, 160, 22);
        for t in [
            NamedTemplate::U5_2.template(),
            NamedTemplate::U7_2.template(),
        ] {
            let mut one = cfg(4);
            one.strategy = PartitionStrategy::OneAtATime;
            let mut bal = cfg(4);
            bal.strategy = PartitionStrategy::Balanced;
            let a = count_template(&g, &t, &one).unwrap().per_iteration;
            let b = count_template(&g, &t, &bal).unwrap().per_iteration;
            assert_eq!(a, b, "strategies disagree for {t:?}");
        }
    }

    /// Serial, inner-parallel and outer-parallel modes are bitwise equal.
    #[test]
    fn parallel_modes_agree_exactly() {
        let g = gnm(45, 140, 23);
        let t = Template::path(5);
        let runs: Vec<Vec<f64>> = [
            ParallelMode::Serial,
            ParallelMode::InnerLoop,
            ParallelMode::OuterLoop,
        ]
        .into_iter()
        .map(|mode| {
            let mut c = cfg(6);
            c.parallel = mode;
            count_template(&g, &t, &c).unwrap().per_iteration
        })
        .collect();
        assert_eq!(runs[0], runs[1], "serial vs inner");
        assert_eq!(runs[0], runs[2], "serial vs outer");
    }

    #[test]
    fn labeled_counting_converges() {
        let g = gnm(50, 170, 29);
        let gl = random_labels(50, 2, 5);
        let t = Template::path(3).with_labels(vec![0, 1, 0]).unwrap();
        let exact = count_exact_labeled(&g, &gl, &t) as f64;
        assert!(exact > 0.0);
        let r = count_template_labeled(&g, &gl, &t, &cfg(800)).unwrap();
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel < 0.1, "estimate {} vs exact {exact}", r.estimate);
    }

    #[test]
    fn single_label_equals_unlabeled() {
        let g = gnm(40, 120, 31);
        let gl = vec![0u8; 40];
        let t_plain = Template::path(4);
        let t_lab = Template::path(4).with_labels(vec![0; 4]).unwrap();
        let a = count_template(&g, &t_plain, &cfg(5)).unwrap().per_iteration;
        let b = count_template_labeled(&g, &gl, &t_lab, &cfg(5))
            .unwrap()
            .per_iteration;
        assert_eq!(a, b);
    }

    #[test]
    fn extra_colors_still_converge() {
        let g = gnm(50, 150, 37);
        let t = Template::path(4);
        let exact = count_exact(&g, &t) as f64;
        let mut c = cfg(600);
        c.colors = Some(6); // k > template size
        let r = count_template(&g, &t, &c).unwrap();
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel < 0.1, "estimate {} vs exact {exact}", r.estimate);
        assert!(r.colorful_probability > colorful_probability(4, 4));
    }

    #[test]
    fn single_vertex_template_counts_vertices() {
        let g = gnm(33, 60, 41);
        let t = Template::from_edges(1, &[]).unwrap();
        let r = count_template(&g, &t, &cfg(3)).unwrap();
        assert_eq!(r.estimate, 33.0);
    }

    #[test]
    fn edge_template_counts_edges() {
        let g = gnm(40, 111, 43);
        let t = Template::path(2);
        let r = count_template(&g, &t, &cfg(2000)).unwrap();
        let rel = (r.estimate - 111.0).abs() / 111.0;
        assert!(rel < 0.08, "estimate {} vs 111", r.estimate);
    }

    #[test]
    fn rooted_counts_sum_matches_total() {
        // Σ_v graphletdegree(v, root orbit) = count * (orbit size in T):
        // for the path end orbit of P3, each occurrence has 2 end slots.
        let g = gnm(40, 130, 47);
        let t = Template::path(3);
        let c = cfg(400);
        let rooted = rooted_counts(&g, &t, 0, &c).unwrap();
        let total: f64 = rooted.per_vertex.iter().sum();
        let exact = count_exact(&g, &t) as f64;
        let rel = (total / 2.0 - exact).abs() / exact;
        assert!(rel < 0.1, "rooted sum/2 {} vs exact {exact}", total / 2.0);
    }

    #[test]
    fn rooted_center_orbit_of_p3() {
        let g = gnm(40, 130, 53);
        let t = Template::path(3);
        let c = cfg(400);
        let rooted = rooted_counts(&g, &t, 1, &c).unwrap();
        let total: f64 = rooted.per_vertex.iter().sum();
        let exact = count_exact(&g, &t) as f64;
        // Each occurrence has exactly one center slot.
        let rel = (total - exact).abs() / exact;
        assert!(rel < 0.1, "rooted center sum {total} vs exact {exact}");
    }

    #[test]
    fn memory_accounting_orders_layouts() {
        // On a sparse low-degree graph with a long path, hash < lazy <=
        // dense (the Fig. 7 relationship).
        let g = fascia_graph::gen::road_grid(40, 40, 1900, 3);
        let t = Template::path(7);
        let mut peaks = Vec::new();
        for kind in TableKind::all() {
            let mut c = cfg(1);
            c.table = kind;
            peaks.push((kind, count_template(&g, &t, &c).unwrap().peak_table_bytes));
        }
        let dense = peaks[0].1;
        let lazy = peaks[1].1;
        let hash = peaks[2].1;
        assert!(lazy <= dense, "lazy {lazy} vs dense {dense}");
        assert!(hash < dense, "hash {hash} vs dense {dense}");
    }

    #[test]
    fn error_paths() {
        let g = gnm(10, 20, 1);
        let t = Template::path(3);
        // not enough colors
        let mut c = cfg(1);
        c.colors = Some(2);
        assert!(matches!(
            count_template(&g, &t, &c),
            Err(CountError::NotEnoughColors { .. })
        ));
        // zero iterations
        let mut c = cfg(1);
        c.iterations = 0;
        assert_eq!(
            count_template(&g, &t, &c).unwrap_err(),
            CountError::NoIterations
        );
        // labeled template without labels
        let tl = Template::path(3).with_labels(vec![0, 0, 0]).unwrap();
        assert_eq!(
            count_template(&g, &tl, &cfg(1)).unwrap_err(),
            CountError::LabelsRequired
        );
        // label length mismatch
        assert_eq!(
            count_template_labeled(&g, &[0u8; 3], &tl, &cfg(1)).unwrap_err(),
            CountError::LabelLengthMismatch
        );
    }

    /// Metrics on, disabled, or absent must not change any count (the
    /// instrumentation is observe-only), and an enabled registry must end
    /// up populated with the engine's metric families.
    #[test]
    fn metrics_do_not_change_counts() {
        let g = gnm(45, 150, 83);
        let t = NamedTemplate::U5_2.template();
        let absent = cfg(6);
        let disabled = CountConfig {
            metrics: Some(Arc::new(Metrics::disabled())),
            ..cfg(6)
        };
        let registry = Arc::new(Metrics::new());
        let enabled = CountConfig {
            metrics: Some(Arc::clone(&registry)),
            ..cfg(6)
        };
        let a = count_template(&g, &t, &absent).unwrap();
        let d = count_template(&g, &t, &disabled).unwrap();
        let e = count_template(&g, &t, &enabled).unwrap();
        assert_eq!(a.per_iteration, d.per_iteration, "disabled registry");
        assert_eq!(a.per_iteration, e.per_iteration, "enabled registry");
        assert_eq!(a.estimate, e.estimate);
        // The enabled run recorded the engine metric families.
        assert_eq!(registry.counter("engine.iterations.total").get(), 6);
        assert_eq!(registry.histogram("engine.coloring_ns").count(), 6);
        assert_eq!(registry.histogram("engine.iteration_ns").count(), 6);
        assert!(registry.gauge("table.bytes.peak").get() > 0);
        assert!(registry.counter("cut.roots.visited").get() > 0);
        let json = registry.to_json();
        assert!(json.contains("engine.dp_ns.n"), "per-subtemplate spans");
    }

    /// Outer-loop parallel runs record per-thread iteration counts whose
    /// shards sum exactly to the iteration total (Fig. 9 visibility).
    #[test]
    fn metrics_expose_per_thread_work_counts() {
        let g = gnm(45, 150, 89);
        let t = Template::path(5);
        let registry = Arc::new(Metrics::new());
        let c = CountConfig {
            metrics: Some(Arc::clone(&registry)),
            parallel: ParallelMode::OuterLoop,
            ..cfg(12)
        };
        let serial = count_template(&g, &t, &cfg(12)).unwrap();
        let outer = count_template(&g, &t, &c).unwrap();
        assert_eq!(serial.per_iteration, outer.per_iteration);
        let iters = registry.counter("engine.iterations.total");
        assert_eq!(iters.get(), 12);
        assert_eq!(iters.shard_values().iter().sum::<u64>(), 12);
        // Visited + skipped partitions the root-vertex scans exactly.
        let visited = registry.counter("cut.roots.visited").get();
        let skipped = registry.counter("cut.roots.skipped").get();
        // P5 one-at-a-time: 4 cut nodes (sizes 2..=5) scan all 45
        // vertices in each of the 12 iterations.
        assert_eq!(visited + skipped, 45 * 4 * 12);
    }

    /// The hash layout reports probe statistics through the registry.
    #[test]
    fn metrics_report_hash_probe_stats() {
        let g = gnm(40, 120, 97);
        let registry = Arc::new(Metrics::new());
        let c = CountConfig {
            metrics: Some(Arc::clone(&registry)),
            table: TableKind::Hash,
            ..cfg(3)
        };
        count_template(&g, &Template::path(4), &c).unwrap();
        let inserts = registry.counter("table.probe.inserts").get();
        let steps = registry.counter("table.probe.steps").get();
        assert!(inserts > 0, "hash tables were built");
        assert!(steps >= inserts, "each insert takes at least one probe");
        assert_eq!(
            inserts,
            registry.counter("table.entries.live").get(),
            "every live entry was inserted once"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let g = gnm(30, 90, 61);
        let t = NamedTemplate::U5_2.template();
        let a = count_template(&g, &t, &cfg(7)).unwrap();
        let b = count_template(&g, &t, &cfg(7)).unwrap();
        assert_eq!(a.per_iteration, b.per_iteration);
        assert_eq!(a.estimate, b.estimate);
    }

    #[test]
    fn zero_count_when_template_absent() {
        // A star-6 cannot embed into a cycle (max degree 2).
        let ring: Vec<(u32, u32)> = (0..20u32).map(|v| (v, (v + 1) % 20)).collect();
        let g = fascia_graph::Graph::from_edges(20, &ring);
        let r = count_template(&g, &Template::star(6), &cfg(50)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn path_count_on_cycle_is_known() {
        // A cycle of n vertices has exactly n paths on k vertices.
        let n = 24u32;
        let ring: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = fascia_graph::Graph::from_edges(n as usize, &ring);
        for k in [3usize, 5] {
            let r = count_template(&g, &Template::path(k), &cfg(3000)).unwrap();
            let rel = (r.estimate - n as f64).abs() / n as f64;
            assert!(rel < 0.1, "P{k} on C{n}: {}", r.estimate);
        }
    }

    #[test]
    fn big_template_runs_on_connected_graph() {
        // Smoke: U12-2 on a modest graph completes and is non-negative.
        let g = random_connected(200, 500, 9);
        let t = NamedTemplate::U12_2.template();
        let r = count_template(&g, &t, &cfg(2)).unwrap();
        assert!(r.estimate >= 0.0);
        assert!(r.peak_table_bytes > 0);
    }

    /// Per-iteration estimates are unbiased: their mean over many
    /// iterations matches exact counts within a loose statistical bound
    /// (already covered), and each individual estimate is finite.
    #[test]
    fn per_iteration_values_are_finite() {
        let g = gnm(40, 120, 71);
        let r = count_template(&g, &Template::path(5), &cfg(50)).unwrap();
        assert_eq!(r.per_iteration.len(), 50);
        assert_eq!(r.iterations_run, 50);
        assert!(r.per_iteration.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!(r.std_error > 0.0);
        assert!((r.ci95 - 1.96 * r.std_error).abs() < 1e-12);
    }

    /// The ISSUE's acceptance scenario: on a seeded Erdős–Rényi graph with
    /// a known exact count, `RelativeError{0.05, 0.05}` stops in far fewer
    /// iterations than the a-priori AYZ bound, and the truth lies within
    /// the reported 95% CI (with 2x slack for the 5% miss probability to
    /// stay deterministic-robust across seeds).
    #[test]
    fn adaptive_rule_stops_early_and_covers_truth() {
        let g = gnm(60, 180, 13);
        let t = Template::path(4);
        let exact = count_exact(&g, &t) as f64;
        let apriori = fascia_combin::iterations_for(0.05, 0.05, t.size()) as usize;
        let c = CountConfig {
            stop: Some(crate::stats::StopRule::RelativeError {
                epsilon: 0.05,
                delta: 0.05,
                min_iters: 8,
                max_iters: apriori,
            }),
            parallel: ParallelMode::Serial,
            seed: 7,
            ..CountConfig::default()
        };
        let r = count_template(&g, &t, &c).unwrap();
        assert!(
            r.iterations_run < apriori,
            "adaptive used {} of the a-priori {apriori}",
            r.iterations_run
        );
        assert_eq!(r.iterations_run, r.per_iteration.len());
        assert!(
            (exact - r.estimate).abs() <= 2.0 * r.ci95,
            "exact {exact} vs {} ± {}",
            r.estimate,
            r.ci95
        );
        // And it actually converged to the requested tightness.
        assert!(
            r.ci95 / r.estimate <= 0.051,
            "rel CI {}",
            r.ci95 / r.estimate
        );
    }

    /// A `FixedIterations` stop rule is the same thing as the classic
    /// `iterations` field — bitwise.
    #[test]
    fn fixed_stop_rule_equals_iterations_field() {
        let g = gnm(45, 140, 77);
        let t = Template::path(5);
        let classic = count_template(&g, &t, &cfg(9)).unwrap();
        let ruled = count_template(
            &g,
            &t,
            &CountConfig {
                iterations: 1, // ignored: `stop` takes precedence
                stop: Some(crate::stats::StopRule::FixedIterations(9)),
                ..cfg(9)
            },
        )
        .unwrap();
        assert_eq!(classic.per_iteration, ruled.per_iteration);
        assert_eq!(classic.estimate, ruled.estimate);
        assert_eq!(ruled.iterations_run, 9);
    }

    /// With an adaptive rule active, every parallel mode still computes the
    /// same deterministic per-iteration series — modes may stop at
    /// different points (serial checks every iteration, outer/hybrid at
    /// wave barriers) but the iterations they share are bitwise equal, and
    /// outer/hybrid keep per-worker private tables (nothing here adds
    /// shared mutable state).
    #[test]
    fn parallel_modes_agree_with_adaptive_rule_active() {
        let g = gnm(45, 140, 23);
        let t = Template::path(5);
        let rule = crate::stats::StopRule::RelativeError {
            epsilon: 0.10,
            delta: 0.05,
            min_iters: 6,
            max_iters: 600,
        };
        let runs: Vec<CountResult> = [
            ParallelMode::Serial,
            ParallelMode::InnerLoop,
            ParallelMode::OuterLoop,
            ParallelMode::Hybrid,
        ]
        .into_iter()
        .map(|mode| {
            let c = CountConfig {
                parallel: mode,
                stop: Some(rule.clone()),
                ..cfg(6)
            };
            count_template(&g, &t, &c).unwrap()
        })
        .collect();
        for r in &runs {
            assert!(r.iterations_run >= 6 && r.iterations_run <= 600);
        }
        let shortest = runs.iter().map(|r| r.iterations_run).min().unwrap();
        for r in &runs[1..] {
            assert_eq!(
                runs[0].per_iteration[..shortest],
                r.per_iteration[..shortest],
                "shared iteration prefix must be bitwise equal"
            );
        }
        // Serial and inner check after every iteration, so they stop at
        // the identical point with identical results.
        assert_eq!(runs[0].per_iteration, runs[1].per_iteration);
        assert_eq!(runs[0].estimate, runs[1].estimate);
    }

    /// Adaptive runs surface their trajectory through the registry:
    /// `iterations.saved` accounts for the unused budget and the running
    /// estimate/CI gauges hold the final checked values.
    #[test]
    fn adaptive_metrics_record_savings_and_trajectory() {
        let g = gnm(60, 180, 13);
        let t = Template::path(4);
        let registry = Arc::new(Metrics::new());
        let c = CountConfig {
            stop: Some(crate::stats::StopRule::RelativeError {
                epsilon: 0.05,
                delta: 0.05,
                min_iters: 8,
                max_iters: 5_000,
            }),
            parallel: ParallelMode::Serial,
            seed: 7,
            metrics: Some(Arc::clone(&registry)),
            ..CountConfig::default()
        };
        let r = count_template(&g, &t, &c).unwrap();
        let ran = registry.counter("engine.iterations.total").get();
        let saved = registry.counter("engine.iterations.saved").get();
        assert_eq!(ran, r.iterations_run as u64);
        assert_eq!(ran + saved, 5_000);
        assert!(registry.counter("engine.adaptive.checks").get() >= 1);
        assert_eq!(
            registry.gauge("engine.adaptive.estimate").get(),
            r.estimate.round() as u64
        );
        assert!(registry.gauge("engine.adaptive.ci_half_width").get() > 0);
    }

    /// Rooted counting honors the adaptive rule too, and the result still
    /// satisfies the orbit-sum identity.
    #[test]
    fn rooted_counts_with_adaptive_rule() {
        let g = gnm(40, 130, 47);
        let t = Template::path(3);
        let c = CountConfig {
            stop: Some(crate::stats::StopRule::RelativeError {
                epsilon: 0.05,
                delta: 0.05,
                min_iters: 20,
                max_iters: 2_000,
            }),
            parallel: ParallelMode::Serial,
            seed: 1234,
            ..CountConfig::default()
        };
        let rooted = rooted_counts(&g, &t, 0, &c).unwrap();
        let total: f64 = rooted.per_vertex.iter().sum();
        let exact = count_exact(&g, &t) as f64;
        let rel = (total / 2.0 - exact).abs() / exact;
        assert!(rel < 0.1, "rooted sum/2 {} vs exact {exact}", total / 2.0);
    }

    #[test]
    fn invalid_stop_rules_are_rejected() {
        let g = gnm(10, 20, 1);
        let t = Template::path(3);
        for bad in [
            crate::stats::StopRule::RelativeError {
                epsilon: 0.0,
                delta: 0.05,
                min_iters: 1,
                max_iters: 10,
            },
            crate::stats::StopRule::RelativeError {
                epsilon: 0.05,
                delta: 1.5,
                min_iters: 1,
                max_iters: 10,
            },
            crate::stats::StopRule::RelativeError {
                epsilon: 0.05,
                delta: 0.05,
                min_iters: 20,
                max_iters: 10,
            },
        ] {
            let c = CountConfig {
                stop: Some(bad),
                ..cfg(5)
            };
            assert!(matches!(
                count_template(&g, &t, &c),
                Err(CountError::InvalidStopRule(_))
            ));
        }
    }
}

#[cfg(test)]
mod internal_tests {
    use super::*;
    use fascia_combin::{choose, set_of_index};

    /// The removal table must map every (set, member) pair to the correct
    /// reduced set index, and flag non-members with -1.
    #[test]
    fn removal_table_is_exact() {
        let binom = BinomialTable::new(fascia_combin::MAX_COLORS);
        for k in 3..=8usize {
            for h in 2..=k {
                let rem = build_removal_table(k, h, &binom);
                let nc = choose(k, h) as usize;
                assert_eq!(rem.len(), nc * k);
                for idx in 0..nc {
                    let set = set_of_index(idx, h, k, &binom);
                    for c in 0..k as u8 {
                        let r = rem[idx * k + c as usize];
                        if set.contains(&c) {
                            assert!(r >= 0);
                            let reduced = set_of_index(r as usize, h - 1, k, &binom);
                            let mut merged = reduced.clone();
                            merged.push(c);
                            merged.sort_unstable();
                            assert_eq!(merged, set, "k={k} h={h} idx={idx} c={c}");
                        } else {
                            assert_eq!(r, -1, "non-member must be -1");
                        }
                    }
                }
            }
        }
    }

    /// The DP context builds exactly the index tables the partition needs.
    #[test]
    fn context_builds_needed_tables_only() {
        let t = fascia_template::NamedTemplate::U7_2.template();
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        let ctx = DpContext::new(&t, &pt, 7);
        for &idx in pt.unique_order() {
            let node = &pt.nodes()[idx as usize];
            if let fascia_template::partition::NodeKind::Cut { active, .. } = node.kind {
                let a = pt.nodes()[active as usize].size;
                if a == 1 {
                    assert!(ctx.removals.contains_key(&node.size));
                } else {
                    assert!(ctx.splits.contains_key(&(node.size, a)));
                }
            }
        }
        assert_eq!(ctx.nc[7], choose(7, 7) as usize);
        assert_eq!(ctx.nc[3], choose(7, 3) as usize);
    }

    #[test]
    fn for_error_meets_bound() {
        let cfg = CountConfig::for_error(0.5, 0.25, 3);
        assert_eq!(
            cfg.iterations as u64,
            fascia_combin::iterations_for(0.5, 0.25, 3)
        );
        assert!(cfg.iterations > 0);
    }
}

#[cfg(test)]
mod labeled_triangle_tests {
    use super::*;
    use crate::exact::count_exact_labeled;
    use fascia_graph::gen::gnm;
    use fascia_graph::random_labels;

    /// Labeled triangle templates exercise the triangle base case's label
    /// filters on root and both partners.
    #[test]
    fn labeled_triangle_converges() {
        let g = gnm(40, 170, 51);
        let gl = random_labels(40, 2, 9);
        // Distinct partner labels force the ordered-pair handling.
        let t = Template::triangle().with_labels(vec![0, 0, 1]).unwrap();
        let exact = count_exact_labeled(&g, &gl, &t) as f64;
        if exact == 0.0 {
            return;
        }
        let cfg = CountConfig {
            iterations: 2500,
            parallel: ParallelMode::Serial,
            seed: 4,
            ..CountConfig::default()
        };
        let r = count_template_labeled(&g, &gl, &t, &cfg).unwrap();
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel < 0.15, "estimate {} vs exact {exact}", r.estimate);
    }

    /// Summing labeled triangle counts over all label multisets recovers
    /// the unlabeled count (exact engines; validates the α bookkeeping of
    /// label-broken symmetry).
    #[test]
    fn labeled_triangle_partition_identity() {
        let g = gnm(35, 150, 53);
        let gl = random_labels(35, 2, 13);
        let unlabeled = crate::exact::count_exact(&g, &Template::triangle());
        // Label multisets over {0, 1} of size 3: 000, 001, 011, 111.
        let mut sum = 0u128;
        for labels in [vec![0u8, 0, 0], vec![0, 0, 1], vec![0, 1, 1], vec![1, 1, 1]] {
            let t = Template::triangle().with_labels(labels).unwrap();
            sum += count_exact_labeled(&g, &gl, &t);
        }
        assert_eq!(sum, unlabeled);
    }
}
