//! Parallel execution modes (paper §III-E).
//!
//! FASCIA supports two orthogonal multithreading schemes and picks between
//! them by graph size:
//!
//! * **Inner loop** — parallelize the per-vertex count loop (Alg. 2,
//!   line 2) of every subtemplate. Best for large graphs: one DP table,
//!   memory does not grow with threads.
//! * **Outer loop** — run whole color-coding iterations concurrently, one
//!   private DP table per worker (Alg. 1, line 3). Best for small graphs
//!   and many iterations, where per-vertex parallelism is all overhead.
//!
//! `Auto` applies the paper's rule of thumb. Thread counts are controlled
//! by the ambient rayon pool; [`with_threads`] builds a scoped pool for the
//! scaling experiments (Figs. 8–9).

/// Largest vertex count at which [`ParallelMode::Auto`] still picks
/// outer-loop parallelism (exclusive bound).
///
/// Below this size a per-worker private DP table is cheap (tables scale
/// with `n · C(k, h)`) and per-vertex parallelism amortizes badly, so
/// whole iterations are the better unit of work. At or above it the
/// memory cost of one table per worker dominates and the engine switches
/// to a single shared table with inner-loop (per-vertex) parallelism —
/// the paper's §III-E rule of thumb. See DESIGN.md §Parallel modes.
pub const AUTO_OUTER_MAX_VERTICES: usize = 50_000;

/// Fewest iterations for which [`ParallelMode::Auto`] considers outer-loop
/// parallelism (inclusive bound). With a single iteration there is nothing
/// to parallelize over iterations, so inner-loop is always used.
pub const AUTO_OUTER_MIN_ITERATIONS: usize = 2;

/// How to spread work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParallelMode {
    /// Single-threaded reference mode.
    Serial,
    /// Parallelize over graph vertices within each iteration.
    InnerLoop,
    /// Parallelize over iterations; each iteration runs serially.
    OuterLoop,
    /// Parallelize over iterations *and* vertices simultaneously — the
    /// combination the paper names as future work ("we intend to combine
    /// the two OpenMP parallelization strategies"). Rayon's work stealing
    /// balances the two levels automatically.
    Hybrid,
    /// Choose by graph size (the paper's guidance).
    Auto,
}

impl ParallelMode {
    /// Resolves `Auto` for a concrete workload: outer-loop parallelism for
    /// graphs under [`AUTO_OUTER_MAX_VERTICES`] vertices with at least
    /// [`AUTO_OUTER_MIN_ITERATIONS`] iterations, inner-loop otherwise.
    /// Under an adaptive stop rule `iterations` is the rule's budget
    /// (`max_iters`), not the a-posteriori count. Explicit modes resolve
    /// to themselves.
    pub fn resolve(self, num_vertices: usize, iterations: usize) -> ParallelMode {
        match self {
            ParallelMode::Auto => {
                // Small graphs amortize badly over vertices; if there are
                // several iterations to run, prefer outer parallelism.
                if num_vertices < AUTO_OUTER_MAX_VERTICES && iterations >= AUTO_OUTER_MIN_ITERATIONS
                {
                    ParallelMode::OuterLoop
                } else {
                    ParallelMode::InnerLoop
                }
            }
            other => other,
        }
    }

    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            ParallelMode::Serial => "serial",
            ParallelMode::InnerLoop => "inner",
            ParallelMode::OuterLoop => "outer",
            ParallelMode::Hybrid => "hybrid",
            ParallelMode::Auto => "auto",
        }
    }
}

/// Runs `f` inside a rayon pool of exactly `threads` workers.
///
/// # Panics
/// Panics if the pool cannot be built (never happens for sane counts).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolution_follows_paper_rule() {
        assert_eq!(
            ParallelMode::Auto.resolve(1_000, 10),
            ParallelMode::OuterLoop
        );
        assert_eq!(
            ParallelMode::Auto.resolve(1_000_000, 10),
            ParallelMode::InnerLoop
        );
        assert_eq!(
            ParallelMode::Auto.resolve(1_000, 1),
            ParallelMode::InnerLoop
        );
    }

    /// Pins the full Auto resolution table at the exact threshold
    /// boundaries, so a threshold change is a deliberate, visible edit.
    #[test]
    fn auto_resolution_table_is_pinned() {
        let cases = [
            // (vertices, iterations) -> resolved mode
            (0, 0, ParallelMode::InnerLoop),
            (0, AUTO_OUTER_MIN_ITERATIONS, ParallelMode::OuterLoop),
            (
                AUTO_OUTER_MAX_VERTICES - 1,
                AUTO_OUTER_MIN_ITERATIONS - 1,
                ParallelMode::InnerLoop,
            ),
            (
                AUTO_OUTER_MAX_VERTICES - 1,
                AUTO_OUTER_MIN_ITERATIONS,
                ParallelMode::OuterLoop,
            ),
            (
                AUTO_OUTER_MAX_VERTICES - 1,
                usize::MAX,
                ParallelMode::OuterLoop,
            ),
            (
                AUTO_OUTER_MAX_VERTICES,
                AUTO_OUTER_MIN_ITERATIONS,
                ParallelMode::InnerLoop,
            ),
            (usize::MAX, usize::MAX, ParallelMode::InnerLoop),
        ];
        for (n, iters, want) in cases {
            assert_eq!(
                ParallelMode::Auto.resolve(n, iters),
                want,
                "Auto.resolve({n}, {iters})"
            );
        }
        // The constants themselves are part of the public contract.
        assert_eq!(AUTO_OUTER_MAX_VERTICES, 50_000);
        assert_eq!(AUTO_OUTER_MIN_ITERATIONS, 2);
    }

    #[test]
    fn explicit_modes_resolve_to_themselves() {
        for m in [
            ParallelMode::Serial,
            ParallelMode::InnerLoop,
            ParallelMode::OuterLoop,
            ParallelMode::Hybrid,
        ] {
            assert_eq!(m.resolve(123, 456), m);
        }
    }

    #[test]
    fn scoped_pool_uses_requested_threads() {
        let inside = with_threads(3, rayon::current_num_threads);
        assert_eq!(inside, 3);
    }
}
