//! The cut-node DP kernels: scalar (reference) and vectorized
//! (colorset-major batched). See DESIGN.md §15 for the full design.
//!
//! Both kernels evaluate the same factored recurrence
//!
//! ```text
//! row[C] = Σ_{Ca ⊎ Cp = C} act(v, Ca) · (Σ_{u ∈ N(v)} pas(u, Cp))
//! ```
//!
//! The scalar kernel (in `engine::cut_rows_for`) walks it vertex-major:
//! for each vertex it probes child-table rows one color set at a time and
//! allocates one boxed row per active vertex. The vectorized kernel here
//! restructures the same arithmetic around contiguous memory:
//!
//! 1. **Gather** — the passive child's neighbor rows are collected as
//!    contiguous slices (arena rows of the reworked layouts) and
//!    accumulated block-by-block in colorset-major order,
//! 2. **MAC** — the combine runs position-major over
//!    [`fascia_combin::PositionSplitTable`] lanes: a flat
//!    multiply-accumulate `row[i] += act[ai[i]] * pas[pi[i]]` over whole
//!    colorset ranges that the compiler autovectorizes,
//! 3. **Stage** — rows are staged into one [`RowBatch`] arena
//!    (zero per-row allocations) that table construction consumes
//!    directly.
//!
//! # Bitwise-equality contract
//!
//! For every `(vertex, colorset)` slot the vectorized kernel performs the
//! *same multiplications and additions in the same order* as the scalar
//! kernel; it only removes the `a_val != 0.0` skip (adding `+0.0` is a
//! bitwise no-op on the non-negative counts the DP produces) and hoists
//! loop structure. Counts are therefore bitwise identical, which
//! `tests/kernel_equivalence.rs` enforces across every table layout and
//! parallel mode.

use crate::engine::{DpContext, Stored};
use crate::metrics::CutMetrics;
use crate::resilience::{CancelToken, POLL_INTERVAL};
use fascia_graph::Graph;
use fascia_table::{CountTable, RowBatch};
use fascia_template::partition::SubNode;
use rayon::prelude::*;

/// Which cut-node DP kernel the engine runs.
///
/// Both kernels produce bitwise-identical counts for a fixed seed; the
/// knob exists for A/B measurement (`--kernel` on the CLI, the kernel
/// axis of the perf suite) and as an escape hatch should a platform
/// mis-compile the batched loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// Vertex-major reference kernel: per-vertex probes, boxed rows.
    Scalar,
    /// Colorset-major batched kernel: contiguous row gathers, blocked
    /// accumulation, flat multiply-accumulate into a row arena.
    #[default]
    Vectorized,
}

impl KernelKind {
    /// Both kernels, scalar first.
    pub fn all() -> [KernelKind; 2] {
        [KernelKind::Scalar, KernelKind::Vectorized]
    }

    /// Display name used in CLI flags and perf-suite ids.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Vectorized => "vectorized",
        }
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelKind::Scalar),
            "vectorized" | "vec" => Ok(KernelKind::Vectorized),
            other => Err(format!("unknown kernel '{other}' (scalar|vectorized)")),
        }
    }
}

/// Colorset-chunk width (f64 slots) of the blocked neighbor accumulation:
/// 4 KiB per chunk keeps the accumulator resident in L1 while neighbor
/// rows stream through.
const COL_BLOCK: usize = 512;

/// Requests every cache line of a gathered row ahead of the accumulation
/// pass. The neighbor gather is the latency wall of the whole DP: rows
/// land at random arena offsets, so each visit is a likely cache miss.
/// Splitting gather from accumulate means we know all of a vertex's row
/// addresses up front — prefetching them back-to-back overlaps the misses
/// instead of paying them serially inside the add loop. No-op off x86-64.
#[inline(always)]
fn prefetch_row(r: &[f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let ptr = r.as_ptr().cast::<i8>();
        let bytes = std::mem::size_of_val(r);
        let mut off = 0;
        while off < bytes {
            // Safety: prefetch is a hint; it never faults and `ptr + off`
            // stays inside the row slice.
            unsafe { _mm_prefetch(ptr.add(off), _MM_HINT_T0) };
            off += 64;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

/// Per-worker scratch of the vectorized kernel, reused across vertices so
/// the hot loop never allocates.
struct Scratch<'t> {
    /// Passive-row accumulator (`nc_p` slots).
    pas_acc: Vec<f64>,
    /// Materialized active row when the child table has no contiguous
    /// rows (hash layout).
    act_buf: Vec<f64>,
    /// Gathered neighbor-row slices, in neighbor order.
    nbr_rows: Vec<&'t [f64]>,
    /// Active neighbors awaiting a batched probe (hash layout only).
    probe_vs: Vec<u32>,
    /// Integer color-occurrence counts for single-vertex passive children.
    cnt_buf: Vec<u32>,
    /// Local cut-counter tallies (flushed once per band).
    tally: Tally,
}

impl<'t> Scratch<'t> {
    fn new() -> Self {
        Self {
            pas_acc: Vec::new(),
            act_buf: Vec::new(),
            nbr_rows: Vec::new(),
            probe_vs: Vec::new(),
            cnt_buf: Vec::new(),
            tally: Tally::default(),
        }
    }
}

/// Per-worker tallies of the cut counters, flushed to the shared atomic
/// [`CutMetrics`] once per band instead of once per vertex — the relaxed
/// `fetch_add`s are measurable at ~100ns/vertex loop cost. Totals (and
/// their per-thread attribution) are identical to per-vertex counting.
#[derive(Default)]
struct Tally {
    roots_visited: u64,
    roots_skipped: u64,
    neighbors_visited: u64,
    neighbors_skipped: u64,
}

impl Tally {
    fn flush(&self, cm: Option<&CutMetrics>) {
        let Some(c) = cm else { return };
        if self.roots_visited != 0 {
            c.roots_visited.add(self.roots_visited);
        }
        if self.roots_skipped != 0 {
            c.roots_skipped.add(self.roots_skipped);
        }
        if self.neighbors_visited != 0 {
            c.neighbors_visited.add(self.neighbors_visited);
        }
        if self.neighbors_skipped != 0 {
            c.neighbors_skipped.add(self.neighbors_skipped);
        }
    }
}

/// Computes the cut-node rows with the vectorized kernel, returning the
/// staged row arena. Logically identical (bitwise, see the module docs)
/// to `engine::cut_rows_for` with `targets: None`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cut_batch<'t, T: CountTable>(
    g: &Graph,
    labels: Option<&[u8]>,
    node: &SubNode,
    a_node: &SubNode,
    p_node: &SubNode,
    act: &'t Stored<T>,
    pas: &'t Stored<T>,
    ctx: &DpContext,
    coloring: &[u8],
    inner_parallel: bool,
    cancel: Option<&CancelToken>,
    cm: Option<&CutMetrics>,
) -> RowBatch {
    let h = node.size as usize;
    let a = a_node.size as usize;
    let p = p_node.size as usize;
    let nc_h = ctx.nc[h];
    let nc_p = ctx.nc[p];
    let nc_a = ctx.nc[a];
    let k = ctx.k;
    let rem = if a == 1 {
        Some(&ctx.removals[&node.size][..])
    } else {
        None
    };
    let pos = if a > 1 {
        Some(&ctx.pos_splits[&(node.size, a_node.size)])
    } else {
        None
    };

    // One vertex: gather → accumulate → combine → stage. `v` is the
    // global vertex id, `slot_v` its id within `batch` (differs only for
    // the banded parallel path).
    let compute = |scratch: &mut Scratch<'t>, batch: &mut RowBatch, v: usize, slot_v: usize| {
        // Cooperative cancellation poll (see `triangle_rows_for`); a
        // bailed-out kernel leaves a truncated batch the caller discards.
        if v & (POLL_INTERVAL - 1) == 0 && cancel.is_some_and(|c| c.is_cancelled()) {
            return;
        }
        // Split the scratch into disjoint field borrows so the active
        // slice (possibly `act_buf`) can coexist with the accumulator.
        let Scratch {
            pas_acc,
            act_buf,
            nbr_rows,
            probe_vs,
            cnt_buf,
            tally,
        } = scratch;
        // Active availability at v — the paper's "initialized" check.
        // Mirrors the scalar kernel exactly, including the metric counts.
        let act_slice: Option<&[f64]> = match act {
            Stored::Single { label } => {
                if let (Some(l), Some(gl)) = (label, labels) {
                    if gl[v] != *l {
                        tally.roots_skipped += 1;
                        return;
                    }
                }
                None
            }
            Stored::Table(tb) => {
                if !tb.vertex_active(v) {
                    tally.roots_skipped += 1;
                    return;
                }
                Some(match tb.row_slice(v) {
                    Some(s) => s,
                    None => {
                        // Hash layout: materialize the active row once with a
                        // batched probe (nc_a slots, one hash) instead of
                        // probing inside the MAC (nc_h · C(h,a) probes in
                        // the scalar kernel).
                        act_buf.clear();
                        act_buf.resize(nc_a, 0.0);
                        tb.add_row_into(v, act_buf);
                        &act_buf[..]
                    }
                })
            }
        };
        tally.roots_visited += 1;

        // Accumulate passive rows over the neighborhood. Slice-backed
        // rows are gathered first and added in colorset-major blocks;
        // a child table either has slices for every active vertex
        // (dense/lazy arenas) or for none (hash), so per-slot addition
        // order stays exactly the scalar kernel's neighbor order.
        pas_acc.clear();
        pas_acc.resize(nc_p, 0.0);
        let mut nbr_visited = 0u64;
        let mut nbr_skipped = 0u64;
        match pas {
            Stored::Single { label } => {
                // Singleton color sets rank as their color value, and every
                // neighbor contributes exactly +1.0 — so count occurrences
                // in integers (1-cycle adds, no FP dependency chains) and
                // convert once. Counts are small exact integers, so the
                // converted value is bitwise identical to summed 1.0s.
                cnt_buf.clear();
                cnt_buf.resize(nc_p, 0);
                for &u in g.neighbors(v) {
                    let u = u as usize;
                    if let (Some(l), Some(gl)) = (label, labels) {
                        if gl[u] != *l {
                            nbr_skipped += 1;
                            continue;
                        }
                    }
                    cnt_buf[coloring[u] as usize] += 1;
                    nbr_visited += 1;
                }
                for (a, &c) in pas_acc.iter_mut().zip(cnt_buf.iter()) {
                    *a = c as f64;
                }
            }
            Stored::Table(tb) if tb.has_row_slices() => {
                // Slice-backed layouts (dense/lazy): one probe serves as
                // both the activity check and the row read, and the
                // prefetch starts each row's lines loading while the rest
                // of the gather runs. Addition order (below) is exactly
                // the scalar kernel's neighbor order.
                nbr_rows.clear();
                for &u in g.neighbors(v) {
                    match tb.row_slice(u as usize) {
                        Some(s) => {
                            prefetch_row(s);
                            nbr_rows.push(s);
                            nbr_visited += 1;
                        }
                        None => nbr_skipped += 1,
                    }
                }
                if nc_p <= COL_BLOCK {
                    // Common case: the whole row is one block — skip the
                    // chunk bookkeeping. Per-slot addition order is the
                    // gathered neighbor order either way.
                    for r in nbr_rows.iter() {
                        for (d, s) in pas_acc.iter_mut().zip(*r) {
                            *d += *s;
                        }
                    }
                } else {
                    let mut c0 = 0;
                    while c0 < nc_p {
                        let c1 = (c0 + COL_BLOCK).min(nc_p);
                        for r in nbr_rows.iter() {
                            for (d, s) in pas_acc[c0..c1].iter_mut().zip(&r[c0..c1]) {
                                *d += *s;
                            }
                        }
                        c0 = c1;
                    }
                }
            }
            Stored::Table(tb) => {
                // Hash layout: no contiguous rows to gather. Collect the
                // active neighbors first — the hint starts each probe
                // window loading — then batch-probe in neighbor order.
                probe_vs.clear();
                for &u in g.neighbors(v) {
                    let u = u as usize;
                    if tb.vertex_active(u) {
                        tb.prefetch_row_hint(u);
                        probe_vs.push(u as u32);
                        nbr_visited += 1;
                    } else {
                        nbr_skipped += 1;
                    }
                }
                for &u in probe_vs.iter() {
                    tb.add_row_into(u as usize, pas_acc);
                }
            }
        }
        tally.neighbors_visited += nbr_visited;
        tally.neighbors_skipped += nbr_skipped;
        if nbr_visited == 0 {
            return;
        }

        // Combine into a staged arena row (zeroed by `stage`).
        let row = batch.stage();
        let nonzero;
        match (act_slice, rem, pos) {
            (None, Some(rem), _) => {
                // Active is the bare root vertex: the only live color set
                // for it is {color(v)} — look up C \ {color(v)} directly.
                let cv = coloring[v] as usize;
                let mut nz = false;
                for (i, slot) in row.iter_mut().enumerate() {
                    let r = rem[i * k + cv];
                    if r >= 0 {
                        let val = pas_acc[r as usize];
                        if val != 0.0 {
                            *slot = val;
                            nz = true;
                        }
                    }
                }
                nonzero = nz;
            }
            (Some(act_row), _, Some(pos)) => {
                // Position-major flat MAC: lane j of set i is the j-th
                // entry of the scalar kernel's split walk, so every slot
                // accumulates its products in the identical order.
                for j in 0..pos.splits_per_set() {
                    let (ai, pi) = pos.lane(j);
                    for ((slot, &a_idx), &p_idx) in row.iter_mut().zip(ai).zip(pi) {
                        *slot += act_row[a_idx as usize] * pas_acc[p_idx as usize];
                    }
                }
                nonzero = row.iter().any(|&x| x != 0.0);
            }
            _ => unreachable!("active-single uses removals; larger actives use splits"),
        }
        if nonzero {
            batch.commit(slot_v);
        }
    };

    let n = g.num_vertices();
    if inner_parallel {
        // Band the vertex range; each worker fills a private batch, and
        // the in-order concatenation reproduces the serial arena exactly
        // (rows are independent, so band boundaries cannot change them).
        let bands = (rayon::current_num_threads() * 4).max(1);
        let band_len = n.div_ceil(bands).max(64);
        let n_bands = n.div_ceil(band_len);
        let parts: Vec<RowBatch> = (0..n_bands)
            .into_par_iter()
            .map(|b| {
                let start = b * band_len;
                let end = (start + band_len).min(n);
                let mut batch = RowBatch::new(end - start, nc_h);
                let mut scratch = Scratch::new();
                for v in start..end {
                    compute(&mut scratch, &mut batch, v, v - start);
                }
                scratch.tally.flush(cm);
                batch
            })
            .collect();
        RowBatch::concat(n, nc_h, parts)
    } else {
        let mut batch = RowBatch::new(n, nc_h);
        let mut scratch = Scratch::new();
        for v in 0..n {
            compute(&mut scratch, &mut batch, v, v);
        }
        scratch.tally.flush(cm);
        batch
    }
}
