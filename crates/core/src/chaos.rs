//! Deterministic, seed-scheduled chaos injection (DESIGN.md §16).
//!
//! [`FaultInjection`](crate::resilience::FaultInjection) can crash one
//! exact iteration; that is enough for unit tests but not for soak
//! testing a long-running service, where faults must arrive *randomly yet
//! reproducibly* across thousands of iterations, IO operations, and
//! retry attempts. This module generalizes the hook into a schedule:
//!
//! * every potential fault site is addressed by a stable coordinate
//!   (site, run, iteration, attempt),
//! * whether a fault fires at a coordinate is a *pure function* of the
//!   schedule seed and the coordinate (a splitmix64 hash against a
//!   probability threshold) — no RNG state, no call-order dependence,
//! * every fired fault is appended to an in-memory event log, so a soak
//!   run can print the exact sequence it experienced and a replay with
//!   the same spec reproduces it byte for byte.
//!
//! Because decisions are coordinate-hashed rather than drawn from a
//! stream, parallel execution cannot perturb the schedule: iteration 17
//! of run 3 panics (or not) regardless of which thread reaches it first
//! or in what order. Only the *log order* can vary under outer-loop
//! parallelism; serial runs log in execution order.
//!
//! The schedule is configured with a compact spec string (CLI `--chaos`,
//! env [`CHAOS_ENV`]):
//!
//! ```text
//! seed=7,panic=0.05,io=0.1,stall=0.2,stall_ms=5,squeeze=0.25
//! ```
//!
//! | key           | meaning                                                    |
//! |---------------|------------------------------------------------------------|
//! | `seed=U`      | schedule seed (default 0)                                  |
//! | `panic=P`     | per-(run,iteration,attempt) worker panic probability       |
//! | `panic_at=N`  | always panic the first attempt of iteration N of run 0     |
//! | `io=P`        | per-operation injected IO error probability (all sites)    |
//! | `io_ckpt=P`   | checkpoint-save override                                   |
//! | `io_graph=P`  | graph-load override                                        |
//! | `io_result=P` | result-write override                                      |
//! | `stall=P`     | per-(run,iteration) DP stall probability                   |
//! | `stall_ms=M`  | stall duration in milliseconds (default 10)                |
//! | `squeeze=P`   | per-run memory-budget squeeze probability                  |
//! | `squeeze_shift=S` | squeeze divides the budget by `2^S` (default 1)        |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Environment variable consulted by [`Chaos::from_env`].
pub const CHAOS_ENV: &str = "FASCIA_CHAOS";

/// Where an injected IO error strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSite {
    /// A checkpoint flush inside the engine.
    CheckpointSave,
    /// Loading a graph into the service's pool.
    GraphLoad,
    /// Writing a job result document.
    ResultWrite,
}

impl IoSite {
    /// Stable lower-case name (used in event-log lines).
    pub fn name(&self) -> &'static str {
        match self {
            IoSite::CheckpointSave => "ckpt",
            IoSite::GraphLoad => "graph",
            IoSite::ResultWrite => "result",
        }
    }
}

/// Parsed chaos schedule parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Schedule seed: same seed + same coordinates ⇒ same faults.
    pub seed: u64,
    /// Worker-panic probability per (run, iteration, attempt).
    pub panic_prob: f64,
    /// Deterministic single panic: first attempt of this iteration of
    /// run 0 (the generalization of `FaultInjection::panic_on_iteration`).
    pub panic_at: Option<usize>,
    /// Injected-IO-error probability per operation, per site.
    pub io_ckpt_prob: f64,
    /// See [`ChaosSpec::io_ckpt_prob`].
    pub io_graph_prob: f64,
    /// See [`ChaosSpec::io_ckpt_prob`].
    pub io_result_prob: f64,
    /// DP-stall probability per (run, iteration).
    pub stall_prob: f64,
    /// How long a fired stall sleeps.
    pub stall: Duration,
    /// Memory-budget squeeze probability per run.
    pub squeeze_prob: f64,
    /// A fired squeeze divides the budget by `2^squeeze_shift`.
    pub squeeze_shift: u32,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_prob: 0.0,
            panic_at: None,
            io_ckpt_prob: 0.0,
            io_graph_prob: 0.0,
            io_result_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::from_millis(10),
            squeeze_prob: 0.0,
            squeeze_shift: 1,
        }
    }
}

/// A chaos spec string that could not be parsed; the payload names the
/// offending `key=value` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError(pub String);

impl std::fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid chaos spec: {}", self.0)
    }
}

impl std::error::Error for ChaosParseError {}

impl std::str::FromStr for ChaosSpec {
    type Err = ChaosParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = ChaosSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| ChaosParseError(format!("{part:?} is not key=value")))?;
            let bad = || ChaosParseError(format!("{part:?} has an unusable value"));
            let prob = || -> Result<f64, ChaosParseError> {
                let p: f64 = value.parse().map_err(|_| bad())?;
                if (0.0..=1.0).contains(&p) {
                    Ok(p)
                } else {
                    Err(ChaosParseError(format!(
                        "{part:?}: probability must be in [0, 1]"
                    )))
                }
            };
            match key.trim() {
                "seed" => spec.seed = value.parse().map_err(|_| bad())?,
                "panic" => spec.panic_prob = prob()?,
                "panic_at" => spec.panic_at = Some(value.parse().map_err(|_| bad())?),
                "io" => {
                    let p = prob()?;
                    spec.io_ckpt_prob = p;
                    spec.io_graph_prob = p;
                    spec.io_result_prob = p;
                }
                "io_ckpt" => spec.io_ckpt_prob = prob()?,
                "io_graph" => spec.io_graph_prob = prob()?,
                "io_result" => spec.io_result_prob = prob()?,
                "stall" => spec.stall_prob = prob()?,
                "stall_ms" => spec.stall = Duration::from_millis(value.parse().map_err(|_| bad())?),
                "squeeze" => spec.squeeze_prob = prob()?,
                "squeeze_shift" => spec.squeeze_shift = value.parse().map_err(|_| bad())?,
                other => {
                    return Err(ChaosParseError(format!("unknown key {other:?}")));
                }
            }
        }
        Ok(spec)
    }
}

/// Per-site salts keep the decision streams independent: a seed that
/// panics iteration 7 says nothing about whether iteration 7 stalls.
const SALT_PANIC: u64 = 0x8C5F_1A2B_3C4D_5E6F;
const SALT_IO_CKPT: u64 = 0x1357_9BDF_2468_ACE0;
const SALT_IO_GRAPH: u64 = 0xFEDC_BA98_7654_3210;
const SALT_IO_RESULT: u64 = 0x0F1E_2D3C_4B5A_6978;
const SALT_STALL: u64 = 0xA5A5_A5A5_5A5A_5A5A;
const SALT_SQUEEZE: u64 = 0xC3C3_3C3C_C3C3_3C3C;

/// splitmix64 finalizer: a high-quality 64-bit mix, the standard choice
/// for turning structured coordinates into uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether the coordinate-addressed fault fires: hash the coordinates
/// into a uniform u64 and compare against the probability threshold.
fn fires(seed: u64, salt: u64, coords: &[u64], prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    let mut h = splitmix64(seed ^ salt);
    for &c in coords {
        h = splitmix64(h ^ c);
    }
    // Top 53 bits → uniform in [0, 1); exact and portable.
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < prob
}

/// A live chaos schedule: the parsed spec plus a run counter and the
/// fired-event log. One instance is shared (via `Arc`) by every run it
/// supervises; each engine run claims a fresh run index with
/// [`Chaos::begin_run`], so a retried job rolls new fault coordinates
/// (that is what makes injected faults *transient*).
#[derive(Debug)]
pub struct Chaos {
    spec: ChaosSpec,
    runs: AtomicU64,
    log: Mutex<Vec<String>>,
}

impl Chaos {
    /// A schedule from parsed parameters.
    pub fn new(spec: ChaosSpec) -> Self {
        Self {
            spec,
            runs: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Parses the [`CHAOS_ENV`] variable; `Ok(None)` when unset or empty.
    pub fn from_env() -> Result<Option<Self>, ChaosParseError> {
        match std::env::var(CHAOS_ENV) {
            Ok(s) if !s.trim().is_empty() => Ok(Some(Self::new(s.parse()?))),
            _ => Ok(None),
        }
    }

    /// The schedule parameters.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Claims the next run index. The engine calls this once per counting
    /// run; services submit jobs in a deterministic order, so run indices
    /// (and therefore the whole schedule) replay identically.
    pub fn begin_run(self: &std::sync::Arc<Self>) -> ChaosRun {
        ChaosRun {
            chaos: self.clone(),
            run: self.runs.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Every fault fired so far, in firing order (stable for serial
    /// execution). Each line is `site run=R [iter=I] [attempt=A]`.
    pub fn events(&self) -> Vec<String> {
        self.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn record(&self, line: String) {
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line);
    }
}

/// One engine run's view of the schedule: the shared [`Chaos`] plus this
/// run's claimed index. Cheap to clone into worker closures.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    chaos: std::sync::Arc<Chaos>,
    run: u64,
}

impl ChaosRun {
    /// This run's index in the schedule.
    pub fn run_index(&self) -> u64 {
        self.run
    }

    /// Whether the worker should panic at (iteration, attempt). Attempt 0
    /// is the first execution, attempt 1 the engine's in-place retry.
    pub fn should_panic(&self, iteration: usize, attempt: u32) -> bool {
        let s = &self.chaos.spec;
        let fired = (s.panic_at == Some(iteration) && self.run == 0 && attempt == 0)
            || fires(
                s.seed,
                SALT_PANIC,
                &[self.run, iteration as u64, attempt as u64],
                s.panic_prob,
            );
        if fired {
            self.chaos.record(format!(
                "panic run={} iter={iteration} attempt={attempt}",
                self.run
            ));
        }
        fired
    }

    /// An injected IO error for this operation, if the schedule says so.
    /// `op` distinguishes successive operations at the same site within a
    /// run (e.g. the engine passes the checkpoint flush ordinal).
    pub fn io_error(&self, site: IoSite, op: u64) -> Option<std::io::Error> {
        let s = &self.chaos.spec;
        let (salt, prob) = match site {
            IoSite::CheckpointSave => (SALT_IO_CKPT, s.io_ckpt_prob),
            IoSite::GraphLoad => (SALT_IO_GRAPH, s.io_graph_prob),
            IoSite::ResultWrite => (SALT_IO_RESULT, s.io_result_prob),
        };
        if !fires(s.seed, salt, &[self.run, op], prob) {
            return None;
        }
        self.chaos
            .record(format!("io.{} run={} op={op}", site.name(), self.run));
        Some(std::io::Error::other(format!(
            "injected chaos io fault (site {}, run {}, op {op})",
            site.name(),
            self.run
        )))
    }

    /// How long the DP should stall in this iteration (`None` = no stall).
    pub fn dp_stall(&self, iteration: usize) -> Option<Duration> {
        let s = &self.chaos.spec;
        if !fires(
            s.seed,
            SALT_STALL,
            &[self.run, iteration as u64],
            s.stall_prob,
        ) {
            return None;
        }
        self.chaos
            .record(format!("stall run={} iter={iteration}", self.run));
        Some(s.stall)
    }

    /// Right-shift to apply to the run's memory budget (0 = no squeeze).
    pub fn budget_squeeze_shift(&self) -> u32 {
        let s = &self.chaos.spec;
        if !fires(s.seed, SALT_SQUEEZE, &[self.run], s.squeeze_prob) {
            return 0;
        }
        self.chaos.record(format!(
            "squeeze run={} shift={}",
            self.run, s.squeeze_shift
        ));
        s.squeeze_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spec(s: &str) -> ChaosSpec {
        s.parse().unwrap()
    }

    #[test]
    fn parses_full_spec() {
        let s = spec("seed=7, panic=0.05, io=0.1, stall=0.2, stall_ms=5, squeeze=0.25");
        assert_eq!(s.seed, 7);
        assert_eq!(s.panic_prob, 0.05);
        assert_eq!(s.io_ckpt_prob, 0.1);
        assert_eq!(s.io_graph_prob, 0.1);
        assert_eq!(s.io_result_prob, 0.1);
        assert_eq!(s.stall_prob, 0.2);
        assert_eq!(s.stall, Duration::from_millis(5));
        assert_eq!(s.squeeze_prob, 0.25);
        assert_eq!(s.squeeze_shift, 1);
        // Site-specific overrides layer over the blanket `io=`.
        let s = spec("io=0.5,io_ckpt=0.9");
        assert_eq!(s.io_ckpt_prob, 0.9);
        assert_eq!(s.io_graph_prob, 0.5);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "nonsense",
            "panic",
            "panic=1.5",
            "panic=-0.1",
            "seed=x",
            "unknown=1",
            "stall_ms=-4",
        ] {
            assert!(bad.parse::<ChaosSpec>().is_err(), "accepted {bad:?}");
        }
        // Empty segments and whitespace are tolerated.
        assert_eq!(spec(""), ChaosSpec::default());
        assert_eq!(spec(" , "), ChaosSpec::default());
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let a = Arc::new(Chaos::new(spec(
            "seed=42,panic=0.3,io=0.3,stall=0.3,squeeze=0.5",
        )));
        let b = Arc::new(Chaos::new(spec(
            "seed=42,panic=0.3,io=0.3,stall=0.3,squeeze=0.5",
        )));
        for _ in 0..4 {
            let (ra, rb) = (a.begin_run(), b.begin_run());
            assert_eq!(ra.budget_squeeze_shift(), rb.budget_squeeze_shift());
            for i in 0..50 {
                assert_eq!(ra.should_panic(i, 0), rb.should_panic(i, 0));
                assert_eq!(ra.should_panic(i, 1), rb.should_panic(i, 1));
                assert_eq!(ra.dp_stall(i).is_some(), rb.dp_stall(i).is_some());
                assert_eq!(
                    ra.io_error(IoSite::CheckpointSave, i as u64).is_some(),
                    rb.io_error(IoSite::CheckpointSave, i as u64).is_some()
                );
            }
        }
        // Byte-for-byte replay: identical event logs.
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty(), "0.3 over 200 rolls must fire");
    }

    #[test]
    fn seeds_change_the_schedule_and_runs_are_independent() {
        let a = Arc::new(Chaos::new(spec("seed=1,panic=0.5")));
        let b = Arc::new(Chaos::new(spec("seed=2,panic=0.5")));
        let (ra, rb) = (a.begin_run(), b.begin_run());
        let da: Vec<bool> = (0..64).map(|i| ra.should_panic(i, 0)).collect();
        let db: Vec<bool> = (0..64).map(|i| rb.should_panic(i, 0)).collect();
        assert_ne!(da, db, "different seeds should disagree somewhere");
        // A second run of the same schedule rolls fresh coordinates, so a
        // fault that fired in run 0 is transient, not permanent.
        let ra2 = a.begin_run();
        let da2: Vec<bool> = (0..64).map(|i| ra2.should_panic(i, 0)).collect();
        assert_ne!(da, da2, "run index must enter the hash");
    }

    #[test]
    fn panic_at_is_deterministic_and_first_attempt_only() {
        let c = Arc::new(Chaos::new(spec("panic_at=3")));
        let r = c.begin_run();
        assert!(r.should_panic(3, 0));
        assert!(!r.should_panic(3, 1), "the retry runs clean");
        assert!(!r.should_panic(2, 0));
        let r1 = c.begin_run();
        assert!(!r1.should_panic(3, 0), "panic_at applies to run 0 only");
    }

    #[test]
    fn zero_and_one_probabilities_are_exact() {
        let never = Arc::new(Chaos::new(ChaosSpec::default())).begin_run();
        let always = Arc::new(Chaos::new(spec("stall=1,panic=1"))).begin_run();
        for i in 0..100 {
            assert!(!never.should_panic(i, 0));
            assert!(never.dp_stall(i).is_none());
            assert!(never.io_error(IoSite::GraphLoad, i as u64).is_none());
            assert!(always.should_panic(i, 0));
            assert!(always.dp_stall(i).is_some());
        }
    }

    #[test]
    fn from_env_roundtrip() {
        // Serialized env access: tests in this module run in one process.
        std::env::remove_var(CHAOS_ENV);
        assert!(Chaos::from_env().unwrap().is_none());
        std::env::set_var(CHAOS_ENV, "seed=9,panic=0.1");
        let c = Chaos::from_env().unwrap().unwrap();
        assert_eq!(c.spec().seed, 9);
        std::env::set_var(CHAOS_ENV, "garbage");
        assert!(Chaos::from_env().is_err());
        std::env::remove_var(CHAOS_ENV);
    }
}
