//! Motif finding (paper §V-E).
//!
//! Counts every non-isomorphic tree topology of a given size (11 / 106 /
//! 551 topologies for 7 / 10 / 12 vertices) and derives the relative
//! frequency profile the paper uses to compare networks (Figs. 12–14):
//! each network's counts are scaled by the network's own mean count, so
//! profiles of differently-sized networks overlay.

use crate::engine::{count_template, CountConfig, CountError};
use fascia_graph::Graph;
use fascia_obs::SpanTimer;
use fascia_template::gen::all_free_trees;
use fascia_template::Template;
use std::time::Duration;

/// Counts for every tree topology of one size on one network.
#[derive(Debug, Clone)]
pub struct MotifProfile {
    /// Topology size (number of template vertices).
    pub size: usize,
    /// The templates, in the deterministic generator order.
    pub templates: Vec<Template>,
    /// Estimated count per template.
    pub counts: Vec<f64>,
    /// Mean per-iteration wall-clock per template.
    pub per_iteration_times: Vec<Duration>,
    /// Total wall-clock of the whole scan.
    pub elapsed: Duration,
}

impl MotifProfile {
    /// Counts scaled by the profile mean (the paper's "scaled by each of
    /// the networks' averages", Fig. 13). Zero-mean profiles scale to zero.
    pub fn relative_frequencies(&self) -> Vec<f64> {
        let mean = self.counts.iter().sum::<f64>() / self.counts.len().max(1) as f64;
        if mean == 0.0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c / mean).collect()
    }

    /// Index of the most frequent topology.
    pub fn dominant(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("counts are finite"))
            .map(|(i, _)| i)
    }
}

/// Runs the motif scan: color-coding counts for all free trees of `size`.
///
/// ```
/// use fascia_core::engine::CountConfig;
/// use fascia_core::motifs::motif_profile;
/// use fascia_graph::gen::gnm;
///
/// let g = gnm(50, 120, 1);
/// let cfg = CountConfig { iterations: 30, ..CountConfig::default() };
/// let profile = motif_profile(&g, 4, &cfg).unwrap();
/// assert_eq!(profile.templates.len(), 2); // P4 and the 4-star
/// ```
pub fn motif_profile(
    g: &Graph,
    size: usize,
    cfg: &CountConfig,
) -> Result<MotifProfile, CountError> {
    let start = std::time::Instant::now();
    let templates = all_free_trees(size);
    let mut counts = Vec::with_capacity(templates.len());
    let mut times = Vec::with_capacity(templates.len());
    // One span per topology scanned, on top of the engine's own metrics.
    let template_hist = cfg
        .metrics
        .as_deref()
        .filter(|m| m.is_enabled())
        .map(|m| m.histogram("motifs.template_ns"));
    for t in &templates {
        let _span = SpanTimer::start_opt(template_hist.as_deref());
        let r = count_template(g, t, cfg)?;
        counts.push(r.estimate);
        times.push(r.per_iteration_time);
    }
    Ok(MotifProfile {
        size,
        templates,
        counts,
        per_iteration_times: times,
        elapsed: start.elapsed(),
    })
}

/// Exact motif counts (for the small networks where ground truth is
/// feasible; used by the error figures).
pub fn exact_motif_counts(g: &Graph, size: usize) -> Vec<u128> {
    all_free_trees(size)
        .iter()
        .map(|t| crate::exact::count_exact(g, t))
        .collect()
}

/// Mean relative error of estimates against exact counts, over the
/// templates with non-zero exact count (paper Fig. 11's "average error").
pub fn mean_relative_error(estimates: &[f64], exact: &[u128]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (&est, &ex) in estimates.iter().zip(exact) {
        if ex == 0 {
            continue;
        }
        total += (est - ex as f64).abs() / ex as f64;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_graph::gen::gnm;

    fn cfg(iters: usize) -> CountConfig {
        CountConfig {
            iterations: iters,
            seed: 99,
            ..CountConfig::default()
        }
    }

    #[test]
    fn profile_covers_all_topologies() {
        let g = gnm(60, 150, 4);
        let p = motif_profile(&g, 4, &cfg(20)).unwrap();
        assert_eq!(p.templates.len(), 2); // path4 and star4
        assert_eq!(p.counts.len(), 2);
        assert!(p.counts.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn relative_frequencies_average_to_one() {
        let g = gnm(60, 180, 6);
        let p = motif_profile(&g, 5, &cfg(30)).unwrap();
        let rel = p.relative_frequencies();
        let mean: f64 = rel.iter().sum::<f64>() / rel.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_track_exact_on_small_graph() {
        let g = gnm(40, 90, 8);
        let exact = exact_motif_counts(&g, 4);
        let p = motif_profile(&g, 4, &cfg(300)).unwrap();
        let err = mean_relative_error(&p.counts, &exact);
        assert!(err < 0.15, "mean relative error {err}");
        // Dominant topology agrees with the exact dominant one.
        let exact_dom = exact.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0;
        assert_eq!(p.dominant(), Some(exact_dom));
    }

    #[test]
    fn mean_relative_error_ignores_zero_truth() {
        assert_eq!(mean_relative_error(&[5.0, 3.0], &[0, 3]), 0.0);
        let e = mean_relative_error(&[110.0], &[100]);
        assert!((e - 0.1).abs() < 1e-12);
    }
}
