//! Engine-side trace-name resolution — the flight-recorder counterpart of
//! the `metrics` module.
//!
//! Interning a trace name takes a short mutex, so the engine does it
//! exactly once per counting run, before any iteration starts. The hot
//! loops then carry an `Option<&RunTrace>`: with tracing absent this is
//! `None` and each site costs a single pointer check; with tracing present
//! each event is a lock-free push into the recording thread's ring.
//!
//! # Event taxonomy
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `iteration` | span | one full color-coding iteration (arg = iteration index) |
//! | `coloring` | span | the random-coloring phase of an iteration |
//! | `wave` | span | one wave of iterations between barriers (arg = wave size) |
//! | `dp.n<idx>.<kind><size>` | span | one subtemplate's DP pass (one name per partition node) |
//! | `table.build` | instant | a DP table was materialized (arg = table bytes) |
//! | `table.fallback` | instant | the memory-budget gate degraded the layout (arg = ladder steps) |
//! | `checkpoint.flush` | span | a checkpoint file write |
//! | `checkpoint.resume` | instant | the run resumed from a checkpoint (arg = iterations replayed) |
//! | `cancelled` | instant | cooperative cancellation was observed at a barrier |
//! | `panic.retry` | instant | a poisoned iteration was retried (arg = iteration index) |
//! | `adaptive.ci_permille` | counter | running relative CI half-width, in ‰ of the estimate |
//!
//! Span `tid`s are [`fascia_obs::thread_slot`] values, so a trace's
//! per-thread tracks line up with the per-shard breakdowns of the sharded
//! counters in the same run's metrics report.

use fascia_obs::{NameId, TraceSpan, Tracer};
use fascia_template::partition::NodeKind;
use fascia_template::PartitionTree;
use std::sync::Arc;

/// All trace-name handles one counting run needs, interned up front.
pub(crate) struct RunTrace {
    pub tracer: Arc<Tracer>,
    pub iteration: NameId,
    pub coloring: NameId,
    pub wave: NameId,
    /// Per-subtemplate span name, indexed by partition-node id (`None`
    /// for nodes outside the unique evaluation order).
    pub node: Vec<Option<NameId>>,
    pub table_build: NameId,
    pub table_fallback: NameId,
    pub checkpoint_flush: NameId,
    pub checkpoint_resume: NameId,
    pub cancelled: NameId,
    pub panic_retry: NameId,
    pub adaptive_ci: NameId,
}

impl RunTrace {
    /// Interns every name against `tracer` for the given partition tree.
    /// Returns `None` when tracing is absent, which is what the hot loops
    /// branch on.
    pub(crate) fn resolve(tracer: Option<&Arc<Tracer>>, pt: &PartitionTree) -> Option<Self> {
        let tracer = Arc::clone(tracer?);
        let mut node: Vec<Option<NameId>> = vec![None; pt.nodes().len()];
        for &idx in pt.unique_order() {
            let n = &pt.nodes()[idx as usize];
            let kind = match n.kind {
                NodeKind::Vertex => "vertex",
                NodeKind::Triangle { .. } => "triangle",
                NodeKind::Cut { .. } => "cut",
            };
            let name = format!("dp.n{idx:02}.{kind}{}", n.size);
            node[idx as usize] = Some(tracer.intern(&name));
        }
        Some(Self {
            iteration: tracer.intern("iteration"),
            coloring: tracer.intern("coloring"),
            wave: tracer.intern("wave"),
            node,
            table_build: tracer.intern("table.build"),
            table_fallback: tracer.intern("table.fallback"),
            checkpoint_flush: tracer.intern("checkpoint.flush"),
            checkpoint_resume: tracer.intern("checkpoint.resume"),
            cancelled: tracer.intern("cancelled"),
            panic_retry: tracer.intern("panic.retry"),
            adaptive_ci: tracer.intern("adaptive.ci_permille"),
            tracer,
        })
    }

    /// Starts a span if tracing is on — the engine's idiom for optional
    /// instrumentation (`None` costs one branch).
    #[inline]
    pub(crate) fn span_opt<'a>(
        tr: Option<&'a RunTrace>,
        pick: impl FnOnce(&RunTrace) -> NameId,
        arg: u64,
    ) -> Option<TraceSpan<'a>> {
        tr.map(|t| t.tracer.span_arg(pick(t), arg))
    }

    /// Starts the per-subtemplate span for partition node `idx`, if both
    /// tracing and the node's name are present.
    #[inline]
    pub(crate) fn node_span_opt<'a>(tr: Option<&'a RunTrace>, idx: usize) -> Option<TraceSpan<'a>> {
        let t = tr?;
        Some(t.tracer.span(t.node[idx]?))
    }

    /// Records an instant event if tracing is on.
    #[inline]
    pub(crate) fn instant_opt(
        tr: Option<&RunTrace>,
        pick: impl FnOnce(&RunTrace) -> NameId,
        arg: u64,
    ) {
        if let Some(t) = tr {
            t.tracer.instant(pick(t), arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_template::{PartitionStrategy, Template};

    #[test]
    fn resolve_requires_a_tracer() {
        let t = Template::path(5);
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert!(RunTrace::resolve(None, &pt).is_none());
        let tracer = Arc::new(Tracer::new());
        let tr = RunTrace::resolve(Some(&tracer), &pt).unwrap();
        for &idx in pt.unique_order() {
            assert!(tr.node[idx as usize].is_some());
        }
        // Node names describe the subtemplate.
        let id = tr.node[pt.unique_order()[0] as usize].unwrap();
        assert!(tracer.name_of(id).starts_with("dp.n"));
    }

    #[test]
    fn optional_helpers_noop_when_absent() {
        assert!(RunTrace::span_opt(None, |t| t.iteration, 0).is_none());
        assert!(RunTrace::node_span_opt(None, 0).is_none());
        RunTrace::instant_opt(None, |t| t.cancelled, 0); // must not panic
    }
}
