//! Random vertex colorings (Algorithm 1, line 4).
//!
//! Every iteration assigns each graph vertex an independent uniform color
//! in `0..k`. Iterations are seeded by a splitmix64 stream so that any
//! execution mode (serial, inner-parallel, outer-parallel) colors iteration
//! `i` identically — the determinism the cross-mode integration tests rely
//! on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One uniform random color in `0..k` per vertex.
///
/// # Panics
/// Panics if `k == 0` or `k > 255`.
pub fn random_coloring(n: usize, k: usize, seed: u64) -> Vec<u8> {
    assert!((1..=255).contains(&k), "color count must be in 1..=255");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..k) as u8).collect()
}

/// splitmix64 step — used to derive independent per-iteration seeds from a
/// base seed without correlation between adjacent iterations.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for iteration `iter` of a run with base seed `seed`.
#[inline]
pub fn iteration_seed(seed: u64, iter: u64) -> u64 {
    splitmix64(seed ^ splitmix64(iter.wrapping_add(0xA5A5_A5A5)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_in_range_and_deterministic() {
        let a = random_coloring(5000, 12, 42);
        let b = random_coloring(5000, 12, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 12));
    }

    #[test]
    fn roughly_uniform() {
        let k = 7;
        let n = 70_000;
        let colors = random_coloring(n, k, 3);
        let mut hist = vec![0usize; k];
        for &c in &colors {
            hist[c as usize] += 1;
        }
        let expect = n as f64 / k as f64;
        let sd = (expect * (1.0 - 1.0 / k as f64)).sqrt();
        for (c, &count) in hist.iter().enumerate() {
            assert!(
                (count as f64 - expect).abs() < 5.0 * sd,
                "color {c}: {count} vs expected {expect}"
            );
        }
    }

    #[test]
    fn iteration_seeds_differ() {
        let s = 12345;
        let seeds: Vec<u64> = (0..100).map(|i| iteration_seed(s, i)).collect();
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), 100);
        // And different base seeds diverge.
        assert_ne!(iteration_seed(1, 0), iteration_seed(2, 0));
    }

    #[test]
    fn splitmix_known_value() {
        // Reference value from the splitmix64 definition with state 0:
        // the first output is 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    #[should_panic]
    fn zero_colors_rejected() {
        random_coloring(10, 0, 0);
    }
}
