//! Estimator convergence & variance observability: the `fascia-est/1`
//! document.
//!
//! This is the fifth resolve-once instrumentation rail next to `metrics`
//! (how much), `trace` (when), `profile` (where time goes), and `mem`
//! (where memory goes): *how the estimate converges and where its
//! variance lives*. An [`EstCollector`] is attached to a run via
//! `CountConfig::est`; the engine then
//!
//! 1. feeds every finished iteration's scaled estimate into a bounded
//!    [`fascia_obs::IterLedger`] together with the running mean and
//!    relative CI (deterministic power-of-two downsampling keeps memory
//!    `O(cap)` regardless of the iteration budget), and
//! 2. decomposes each iteration's root-table total across two stratum
//!    taxonomies — per root-vertex color (the singleton colorset the
//!    root vertex drew this iteration) and per root-vertex degree class
//!    (log2 buckets) — maintaining one [`Welford`] accumulator per
//!    stratum, so the document can report which strata dominate the
//!    estimator's `std_error`.
//!
//! Rendering [`EstCollector::to_json`] produces the stable, additive-only
//! `fascia-est/1` document:
//!
//! ```json
//! {
//!   "schema": "fascia-est/1",
//!   "iterations": u64, "estimate": f64, "std_error": f64,
//!   "relative_ci95": f64|null,
//!   "target_epsilon": f64, "target_delta": f64, "adaptive": bool,
//!   "apriori_iterations": u64, "iterations_to_target": u64|null,
//!   "stalled": bool, "apriori_exhausted": bool,
//!   "ledger": { "cap": u64, "stride": u64, "offered": u64,
//!               "entries": [ { "iteration": u64, "estimate": f64,
//!                              "mean": f64, "rel_ci": f64|null }, ... ] },
//!   "strata": {
//!     "colorset":     { "covariance_pct": f64, "classes": [
//!         { "label": str, "n": u64, "mean": f64, "variance": f64,
//!           "share_pct": f64 }, ... ] },
//!     "degree_class": { ... same shape ... }
//!   }
//! }
//! ```
//!
//! Per-stratum `share_pct` is each stratum's variance as a percentage of
//! the *sum* of stratum variances within its taxonomy (so shares always
//! sum to ~100%); `covariance_pct` reports how much of the total
//! per-iteration variance that sum leaves unexplained (the cross-stratum
//! covariance residual, which can be negative).
//!
//! Like every observability rail here, the collector only observes: the
//! stratum capture re-reads the root table after aggregation and the
//! ledger is fed at the wave barrier, so counting results are bitwise
//! identical with the collector absent or attached.

use crate::stats::Welford;
use fascia_graph::Graph;
use fascia_obs::est::{IterLedger, LedgerEntry, EST_SCHEMA};
use fascia_obs::json::{array_of, ObjectWriter};
use std::sync::{Arc, Mutex};

/// Default ledger retention cap (entries kept after downsampling).
pub const DEFAULT_LEDGER_CAP: usize = 512;

/// Stall heuristic: with iid per-iteration estimates, doubling the
/// iteration count shrinks the relative CI by √2 (to ~0.707×). A final
/// relative CI still above this fraction of its half-run value means the
/// trajectory has stopped improving on schedule.
const STALL_SHRINK_THRESHOLD: f64 = 0.9;

/// Fewest iterations before the stall heuristic is meaningful.
const STALL_MIN_ITERATIONS: u64 = 16;

/// Per-run context the engine resolves once (stop-rule targets and the
/// AYZ a-priori bound) so diagnostics can be computed at render time.
#[derive(Debug, Clone, Copy)]
struct RunContext {
    target_epsilon: f64,
    target_delta: f64,
    apriori_iterations: u64,
    adaptive: bool,
}

/// One iteration's root-table totals split across both stratum
/// taxonomies. Captured read-only inside the iteration, folded into the
/// collector in deterministic iteration order at the wave barrier.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EstIterStrata {
    /// Root-table row sums grouped by the root vertex's color (its
    /// singleton colorset), indexed by color.
    pub by_colorset: Vec<f64>,
    /// Root-table row sums grouped by the root vertex's degree class.
    pub by_class: Vec<f64>,
}

#[derive(Debug)]
struct EstInner {
    ledger: IterLedger,
    total: Welford,
    by_colorset: Vec<Welford>,
    by_class: Vec<Welford>,
    context: Option<RunContext>,
}

/// Thread-safe estimator-convergence collector (see module docs).
///
/// Cheap to share via `Arc`; the engine records once per finished
/// iteration at the wave barrier (a short mutex outside the DP hot
/// loops), so attaching a collector does not perturb the DP itself.
#[derive(Debug)]
pub struct EstCollector {
    inner: Mutex<EstInner>,
}

impl Default for EstCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl EstCollector {
    /// Creates a collector with the default ledger cap.
    pub fn new() -> Self {
        Self::with_ledger_cap(DEFAULT_LEDGER_CAP)
    }

    /// Creates a collector retaining at most `cap` ledger entries.
    pub fn with_ledger_cap(cap: usize) -> Self {
        Self {
            inner: Mutex::new(EstInner {
                ledger: IterLedger::new(cap),
                total: Welford::new(),
                by_colorset: Vec::new(),
                by_class: Vec::new(),
                context: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EstInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Iterations recorded so far.
    pub fn iterations(&self) -> u64 {
        self.lock().total.count() as u64
    }

    fn set_context(&self, ctx: RunContext) {
        self.lock().context = Some(ctx);
    }

    fn record(
        &self,
        iteration: u64,
        estimate: f64,
        running_mean: f64,
        relative_ci: f64,
        strata: Option<&EstIterStrata>,
        scale: f64,
    ) {
        let mut inner = self.lock();
        inner.total.push(estimate);
        if let Some(s) = strata {
            if inner.by_colorset.len() < s.by_colorset.len() {
                inner
                    .by_colorset
                    .resize_with(s.by_colorset.len(), Welford::new);
            }
            for (w, &v) in inner.by_colorset.iter_mut().zip(&s.by_colorset) {
                w.push(v / scale);
            }
            if inner.by_class.len() < s.by_class.len() {
                inner.by_class.resize_with(s.by_class.len(), Welford::new);
            }
            for (w, &v) in inner.by_class.iter_mut().zip(&s.by_class) {
                w.push(v / scale);
            }
        }
        inner.ledger.offer(LedgerEntry {
            iteration,
            estimate,
            running_mean,
            relative_ci,
        });
    }

    /// Renders the `fascia-est/1` document.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let n = inner.total.count() as u64;
        let mean = inner.total.mean();
        let rel_ci95 = if n >= 2 {
            inner.total.relative_ci(1.96)
        } else {
            f64::NAN
        };
        let (eps, delta, apriori, adaptive) = match inner.context {
            Some(c) => (
                c.target_epsilon,
                c.target_delta,
                c.apriori_iterations,
                c.adaptive,
            ),
            None => (0.05, 0.05, 0, false),
        };
        let to_target = if n >= 2 && mean != 0.0 {
            inner.total.stats().iterations_to_reach(eps)
        } else {
            None
        };
        let mut root = ObjectWriter::new();
        root.field_str("schema", EST_SCHEMA)
            .field_u64("iterations", n)
            .field_f64("estimate", if n > 0 { mean } else { f64::NAN })
            .field_f64("std_error", inner.total.std_error())
            .field_f64("relative_ci95", rel_ci95)
            .field_f64("target_epsilon", eps)
            .field_f64("target_delta", delta)
            .field_bool("adaptive", adaptive)
            .field_u64("apriori_iterations", apriori);
        match to_target {
            Some(it) => root.field_u64("iterations_to_target", it as u64),
            None => root.field_raw("iterations_to_target", "null"),
        };
        root.field_bool("stalled", stalled(&inner.ledger, n))
            .field_bool(
                "apriori_exhausted",
                apriori > 0 && n >= apriori && rel_ci95.is_finite() && rel_ci95 > eps,
            );
        let mut ledger = ObjectWriter::new();
        ledger
            .field_u64("cap", inner.ledger.cap() as u64)
            .field_u64("stride", inner.ledger.stride())
            .field_u64("offered", inner.ledger.offered())
            .field_raw(
                "entries",
                &array_of(inner.ledger.entries().iter().map(|e| {
                    let mut o = ObjectWriter::new();
                    o.field_u64("iteration", e.iteration)
                        .field_f64("estimate", e.estimate)
                        .field_f64("mean", e.running_mean)
                        .field_f64("rel_ci", e.relative_ci);
                    o.finish()
                })),
            );
        root.field_raw("ledger", &ledger.finish());
        let mut strata = ObjectWriter::new();
        strata.field_raw(
            "colorset",
            &taxonomy_json(&inner.by_colorset, inner.total.variance(), |i| {
                format!("cs{i}")
            }),
        );
        strata.field_raw(
            "degree_class",
            &taxonomy_json(&inner.by_class, inner.total.variance(), |i| {
                degree_class_label(i as u8)
            }),
        );
        root.field_raw("strata", &strata.finish());
        root.finish()
    }
}

/// Renders one taxonomy's stratum table: per-stratum variance shares
/// against the within-taxonomy variance sum, plus the covariance
/// residual against the total per-iteration variance.
fn taxonomy_json(
    strata: &[Welford],
    total_variance: f64,
    label: impl Fn(usize) -> String,
) -> String {
    let sum_var: f64 = strata.iter().map(Welford::variance).sum();
    let covariance_pct = if total_variance > 0.0 {
        (total_variance - sum_var) / total_variance * 100.0
    } else {
        0.0
    };
    let mut o = ObjectWriter::new();
    o.field_f64("covariance_pct", covariance_pct).field_raw(
        "classes",
        &array_of(strata.iter().enumerate().map(|(i, w)| {
            let share = if sum_var > 0.0 {
                w.variance() / sum_var * 100.0
            } else {
                0.0
            };
            let mut c = ObjectWriter::new();
            c.field_str("label", &label(i))
                .field_u64("n", w.count() as u64)
                .field_f64("mean", w.mean())
                .field_f64("variance", w.variance())
                .field_f64("share_pct", share);
            c.finish()
        })),
    );
    o.finish()
}

/// Stall detection over the ledger's relative-CI trajectory: compare the
/// final relative CI against the entry nearest half the run. With iid
/// samples the CI should have shrunk to ~0.707× by then; anything above
/// [`STALL_SHRINK_THRESHOLD`] flags a stalled trajectory.
fn stalled(ledger: &IterLedger, n: u64) -> bool {
    if n < STALL_MIN_ITERATIONS {
        return false;
    }
    let finite: Vec<&LedgerEntry> = ledger
        .entries()
        .iter()
        .filter(|e| e.relative_ci.is_finite())
        .collect();
    let Some(last) = finite.last() else {
        return false;
    };
    let half = n / 2;
    let Some(mid) = finite
        .iter()
        .min_by_key(|e| e.iteration.abs_diff(half))
        .filter(|e| e.iteration < last.iteration)
    else {
        return false;
    };
    mid.relative_ci > 0.0 && last.relative_ci / mid.relative_ci > STALL_SHRINK_THRESHOLD
}

/// Degree class of a vertex: `floor(log2(deg)) + 1`, with isolated
/// vertices in class 0 — so class `c > 0` covers degrees
/// `[2^(c-1), 2^c)`.
pub(crate) fn degree_class(deg: usize) -> u8 {
    (usize::BITS - deg.leading_zeros()) as u8
}

/// Human-readable label of a degree class (`deg 0`, `deg[1,2)`, ...).
pub(crate) fn degree_class_label(class: u8) -> String {
    if class == 0 {
        "deg 0".to_string()
    } else {
        format!("deg[{},{})", 1u64 << (class - 1), 1u64 << class)
    }
}

/// All estimator-observability handles one counting run needs, resolved
/// up front: the collector plus the per-vertex degree-class map (computed
/// once so the per-iteration capture is a table lookup).
pub(crate) struct RunEst {
    pub collector: Arc<EstCollector>,
    /// Degree class per graph vertex.
    pub deg_class: Vec<u8>,
    /// Number of degree classes present (`max class + 1`).
    pub num_classes: usize,
}

impl RunEst {
    /// Precomputes the degree-class map. Returns `None` when no collector
    /// is attached, which is what hot paths branch on.
    pub(crate) fn resolve(est: Option<&Arc<EstCollector>>, g: &Graph) -> Option<Self> {
        let collector = Arc::clone(est?);
        let deg_class: Vec<u8> = (0..g.num_vertices())
            .map(|v| degree_class(g.degree(v)))
            .collect();
        let num_classes = deg_class.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
        Some(Self {
            collector,
            deg_class,
            num_classes,
        })
    }

    /// Stores the run's stop-rule targets and a-priori bound.
    pub(crate) fn set_run_context(
        &self,
        target_epsilon: f64,
        target_delta: f64,
        apriori_iterations: u64,
        adaptive: bool,
    ) {
        self.collector.set_context(RunContext {
            target_epsilon,
            target_delta,
            apriori_iterations,
            adaptive,
        });
    }

    /// Folds one finished iteration into the collector (called at the
    /// wave barrier, in iteration order). `strata` is `None` for resumed
    /// iterations, whose root tables no longer exist.
    pub(crate) fn record_iteration(
        &self,
        iteration: u64,
        estimate: f64,
        running_mean: f64,
        relative_ci: f64,
        strata: Option<&EstIterStrata>,
        scale: f64,
    ) {
        self.collector.record(
            iteration,
            estimate,
            running_mean,
            relative_ci,
            strata,
            scale,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::Json;

    fn get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
        Json::get(v.as_obj()?, key)
    }

    #[test]
    fn degree_classes_are_log2_buckets() {
        assert_eq!(degree_class(0), 0);
        assert_eq!(degree_class(1), 1);
        assert_eq!(degree_class(2), 2);
        assert_eq!(degree_class(3), 2);
        assert_eq!(degree_class(4), 3);
        assert_eq!(degree_class(7), 3);
        assert_eq!(degree_class(8), 4);
        assert_eq!(degree_class_label(0), "deg 0");
        assert_eq!(degree_class_label(1), "deg[1,2)");
        assert_eq!(degree_class_label(3), "deg[4,8)");
    }

    #[test]
    fn empty_collector_renders_a_valid_document() {
        let c = EstCollector::new();
        let doc = c.to_json();
        assert!(doc.contains("\"schema\":\"fascia-est/1\""));
        assert!(doc.contains("\"iterations\":0"));
        assert!(doc.contains("\"estimate\":null"));
        let v = Json::parse(&doc).expect("parses");
        assert!(v.as_obj().is_some());
    }

    #[test]
    fn stratum_shares_sum_to_100_percent() {
        let c = EstCollector::new();
        // Two colorset strata with different spreads; three iterations.
        let strata = |a: f64, b: f64| EstIterStrata {
            by_colorset: vec![a, b],
            by_class: vec![a + b],
        };
        c.record(0, 3.0, 3.0, f64::NAN, Some(&strata(1.0, 2.0)), 1.0);
        c.record(1, 7.0, 5.0, 0.5, Some(&strata(2.0, 5.0)), 1.0);
        c.record(2, 5.0, 5.0, 0.3, Some(&strata(1.0, 4.0)), 1.0);
        let doc = c.to_json();
        let v = Json::parse(&doc).expect("parses");
        let strata = get(&v, "strata").expect("strata");
        for taxonomy in ["colorset", "degree_class"] {
            let classes = get(strata, taxonomy)
                .and_then(|t| get(t, "classes"))
                .and_then(|c| c.as_arr())
                .expect("classes");
            let total: f64 = classes
                .iter()
                .filter_map(|c| get(c, "share_pct").and_then(|s| s.as_f64()))
                .sum();
            assert!(
                (total - 100.0).abs() < 1e-9,
                "{taxonomy} shares sum to {total}"
            );
        }
    }

    #[test]
    fn ledger_entries_round_trip_through_the_parser() {
        let c = EstCollector::with_ledger_cap(4);
        for i in 0..20u64 {
            c.record(i, i as f64, i as f64 / 2.0, 1.0 / (i + 1) as f64, None, 1.0);
        }
        let doc = c.to_json();
        let v = Json::parse(&doc).expect("parses");
        let ledger = get(&v, "ledger").expect("ledger");
        let entries = get(ledger, "entries")
            .and_then(|e| e.as_arr())
            .expect("entries");
        assert!(!entries.is_empty());
        assert!(entries.len() <= 5);
        let stride = get(ledger, "stride")
            .and_then(|s| s.as_u64())
            .expect("stride");
        assert!(stride.is_power_of_two() && stride > 1);
    }
}
