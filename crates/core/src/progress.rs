//! Live run progress: a stderr progress line for interactive runs and a
//! machine-readable heartbeat file for external supervisors.
//!
//! Both layers ride on the same wave-barrier events the flight recorder
//! sees: the engine calls [`Progress::wave`] after every wave of
//! iterations and [`Progress::finish`] when the run ends (however it
//! ends). Updates are throttled to [`ProgressConfig::min_interval`] so a
//! run with thousands of cheap waves never turns the progress layer into
//! a hot path — except the first and final update, which always emit so
//! short runs still leave a heartbeat behind.
//!
//! The heartbeat file is rewritten atomically (temp file + rename, the
//! same writer discipline as checkpoints), so a watcher never reads a
//! torn document. Schema `fascia-heartbeat/1`, additive-only:
//!
//! ```json
//! {
//!   "schema": "fascia-heartbeat/1",
//!   "pid": u64, "job_id": string | null, "seq": u64,
//!   "phase": "counting", "status": "running" | "finished",
//!   "stop_cause": "completed" | "converged" | "cancelled" | "deadline-exceeded" | null,
//!   "iterations_done": u64, "budget": u64, "percent": f64,
//!   "estimate": f64, "ci_rel": f64 | null, "target_rel": f64 | null,
//!   "elapsed_secs": f64, "est_remaining_secs": f64 | null,
//!   "updates": u64
//! }
//! ```
//!
//! `pid` + `job_id` + `seq` are the supervision triple (DESIGN.md §16): a
//! supervisor matches the document to the job it expects (`job_id`),
//! confirms which process wrote it (`pid`), and watches `seq` — a
//! strictly monotonic per-run emission counter — to distinguish a live
//! worker from a dead or wedged one. A heartbeat whose `seq` stops
//! advancing is *stale* no matter what wall-clock timestamps might claim,
//! which is what makes the protocol immune to clock steps.

use crate::resilience::{atomic_write, StopCause};
use fascia_obs::json::ObjectWriter;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the progress layer should do with each update.
#[derive(Debug, Clone, Default)]
pub struct ProgressConfig {
    /// Rewrite a `\r`-terminated status line on stderr after qualifying
    /// waves (for TTY runs).
    pub stderr_line: bool,
    /// Rewrite this file atomically with the `fascia-heartbeat/1`
    /// document after qualifying waves.
    pub heartbeat: Option<PathBuf>,
    /// Minimum time between emissions (first and final always emit).
    /// `Duration::ZERO` emits on every wave.
    pub min_interval: Duration,
    /// Job identifier stamped into the heartbeat's `job_id` field, so a
    /// supervisor can tell *whose* heartbeat it is reading (`None`
    /// renders as JSON `null` — standalone CLI runs have no job).
    pub job_id: Option<String>,
}

impl ProgressConfig {
    /// A sensible interactive default: 200 ms between updates.
    pub fn with_interval_default(mut self) -> Self {
        self.min_interval = Duration::from_millis(200);
        self
    }
}

/// One wave-barrier status snapshot, assembled by the engine.
#[derive(Debug, Clone, Copy)]
pub struct ProgressSnapshot {
    /// Iterations finished so far (including any resumed prefix).
    pub done: usize,
    /// The stop rule's iteration budget (`max_iters` for adaptive rules).
    pub budget: usize,
    /// Running point estimate (mean of the scaled per-iteration series).
    pub estimate: f64,
    /// Running relative CI half-width (`ci / |estimate|`), when defined.
    pub ci_rel: Option<f64>,
    /// The adaptive rule's relative-error target, if the run is adaptive.
    pub target_rel: Option<f64>,
    /// Wall-clock since the run started.
    pub elapsed: Duration,
    /// Why the run stopped; `None` while still running.
    pub stop_cause: Option<StopCause>,
}

impl ProgressSnapshot {
    /// Estimated seconds to completion, extrapolated from the measured
    /// per-iteration rate: to the remaining budget for fixed rules, to the
    /// CI-implied iteration need (`done · (ci/target)²`, capped by the
    /// budget) for adaptive rules. `None` before any iteration finishes.
    pub fn est_remaining_secs(&self) -> Option<f64> {
        if self.done == 0 {
            return None;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.done as f64;
        let remaining_iters = match (self.ci_rel, self.target_rel) {
            (Some(ci), Some(target)) if target > 0.0 => {
                // CI half-width shrinks as 1/sqrt(n): reaching `target`
                // needs ~done · (ci/target)² iterations in total.
                let needed = (self.done as f64 * (ci / target).powi(2)).ceil();
                (needed.min(self.budget as f64) - self.done as f64).max(0.0)
            }
            _ => (self.budget - self.done.min(self.budget)) as f64,
        };
        Some(remaining_iters * per_iter)
    }

    fn render_line(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!("fascia: iter {}", self.done);
        match (self.ci_rel, self.target_rel) {
            (Some(ci), Some(target)) => {
                let _ = write!(
                    line,
                    " ci ±{:.2}% (target {:.2}%, cap {})",
                    ci * 100.0,
                    target * 100.0,
                    self.budget
                );
            }
            _ => {
                let pct = (100 * self.done).checked_div(self.budget).unwrap_or(0);
                let _ = write!(line, "/{} ({pct}%)", self.budget);
            }
        }
        let _ = write!(line, " elapsed {:.1}s", self.elapsed.as_secs_f64());
        match self.stop_cause {
            Some(cause) => {
                let _ = write!(line, " [{}]", cause.name());
            }
            None => {
                if let Some(eta) = self.est_remaining_secs() {
                    let _ = write!(line, " eta {eta:.1}s");
                }
            }
        }
        line
    }

    fn render_heartbeat(&self, updates: u64, job_id: Option<&str>) -> String {
        let mut o = ObjectWriter::new();
        o.field_str("schema", "fascia-heartbeat/1")
            .field_u64("pid", std::process::id() as u64);
        match job_id {
            Some(id) => o.field_str("job_id", id),
            None => o.field_raw("job_id", "null"),
        };
        // `seq` mirrors `updates` under a supervision-protocol name: the
        // strictly monotonic emission counter a supervisor watches for
        // staleness (both kept so pre-hardening consumers stay valid).
        o.field_u64("seq", updates)
            .field_str("phase", "counting")
            .field_str(
                "status",
                if self.stop_cause.is_some() {
                    "finished"
                } else {
                    "running"
                },
            );
        match self.stop_cause {
            Some(cause) => o.field_str("stop_cause", cause.name()),
            None => o.field_raw("stop_cause", "null"),
        };
        o.field_u64("iterations_done", self.done as u64)
            .field_u64("budget", self.budget as u64)
            .field_f64(
                "percent",
                if self.budget > 0 {
                    100.0 * self.done as f64 / self.budget as f64
                } else {
                    0.0
                },
            )
            .field_f64("estimate", self.estimate);
        match self.ci_rel {
            Some(ci) => o.field_f64("ci_rel", ci),
            None => o.field_raw("ci_rel", "null"),
        };
        match self.target_rel {
            Some(t) => o.field_f64("target_rel", t),
            None => o.field_raw("target_rel", "null"),
        };
        o.field_f64("elapsed_secs", self.elapsed.as_secs_f64());
        match self.est_remaining_secs() {
            Some(eta) => o.field_f64("est_remaining_secs", eta),
            None => o.field_raw("est_remaining_secs", "null"),
        };
        o.field_u64("updates", updates);
        o.finish()
    }
}

#[derive(Debug, Default)]
struct ProgressState {
    last_emit: Option<Instant>,
    updates: u64,
    line_active: bool,
}

/// The live-progress reporter, shared with the engine through
/// `CountConfig::progress`. All methods take `&self`; the engine calls
/// them from the (single-threaded) wave-orchestration loop, never from
/// per-vertex hot loops.
#[derive(Debug, Default)]
pub struct Progress {
    cfg: ProgressConfig,
    state: Mutex<ProgressState>,
}

impl Progress {
    /// A reporter with the given outputs.
    pub fn new(cfg: ProgressConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(ProgressState::default()),
        }
    }

    /// Heartbeat writes performed so far (first, throttled, and final).
    pub fn updates(&self) -> u64 {
        self.state.lock().unwrap().updates
    }

    /// Reports a wave barrier. Emits on the first call and whenever
    /// [`ProgressConfig::min_interval`] has elapsed since the last one.
    pub fn wave(&self, snap: &ProgressSnapshot) {
        let mut st = self.state.lock().unwrap();
        let due = match st.last_emit {
            None => true,
            Some(at) => at.elapsed() >= self.cfg.min_interval,
        };
        if !due {
            return;
        }
        st.last_emit = Some(Instant::now());
        st.updates += 1;
        self.emit(&mut st, snap);
    }

    /// Reports the end of the run (any [`StopCause`]); always emits, and
    /// terminates the stderr line with a newline so later output starts
    /// clean. Also sweeps a stale `.tmp` sibling of the heartbeat file —
    /// only a process that died mid-write leaves one, and the final emit
    /// is the moment the run directory should end clean.
    pub fn finish(&self, snap: &ProgressSnapshot) {
        let mut st = self.state.lock().unwrap();
        st.last_emit = Some(Instant::now());
        st.updates += 1;
        self.emit(&mut st, snap);
        if let Some(path) = &self.cfg.heartbeat {
            let _ = std::fs::remove_file(crate::resilience::tmp_sibling(path));
        }
        if self.cfg.stderr_line && st.line_active {
            eprintln!();
            st.line_active = false;
        }
    }

    fn emit(&self, st: &mut ProgressState, snap: &ProgressSnapshot) {
        if self.cfg.stderr_line {
            eprint!("\r\x1b[2K{}", snap.render_line());
            st.line_active = true;
        }
        if let Some(path) = &self.cfg.heartbeat {
            // A heartbeat failure must never fail the run: the estimate
            // matters more than the status file.
            let _ = atomic_write(
                path,
                &snap.render_heartbeat(st.updates, self.cfg.job_id.as_deref()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: usize, budget: usize) -> ProgressSnapshot {
        ProgressSnapshot {
            done,
            budget,
            estimate: 42.5,
            ci_rel: None,
            target_rel: None,
            elapsed: Duration::from_millis(500),
            stop_cause: None,
        }
    }

    #[test]
    fn heartbeat_file_is_written_and_valid() {
        let dir = std::env::temp_dir().join(format!("fascia-hb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.json");
        let p = Progress::new(ProgressConfig {
            stderr_line: false,
            heartbeat: Some(path.clone()),
            min_interval: Duration::ZERO,
            job_id: Some("job-7".to_string()),
        });
        p.wave(&snap(3, 10));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema\":\"fascia-heartbeat/1\""));
        assert!(text.contains("\"iterations_done\":3"));
        assert!(text.contains("\"status\":\"running\""));
        assert!(text.contains("\"stop_cause\":null"));
        // Supervision triple: job id, writer pid, monotonic sequence.
        assert!(text.contains("\"job_id\":\"job-7\""), "{text}");
        assert!(text.contains(&format!("\"pid\":{}", std::process::id())));
        assert!(text.contains("\"seq\":1"), "{text}");
        let mut fin = snap(10, 10);
        fin.stop_cause = Some(StopCause::Completed);
        p.finish(&fin);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"status\":\"finished\""));
        assert!(text.contains("\"stop_cause\":\"completed\""));
        assert!(text.contains("\"percent\":100"));
        assert_eq!(p.updates(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_sweeps_a_stale_heartbeat_temp_file() {
        let dir = std::env::temp_dir().join(format!("fascia-hb-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.json");
        // Plant the staging file a crashed predecessor would leave behind
        // (died between write and rename).
        let stale = crate::resilience::tmp_sibling(&path);
        std::fs::write(&stale, "{\"torn\":").unwrap();
        let p = Progress::new(ProgressConfig {
            stderr_line: false,
            heartbeat: Some(path.clone()),
            min_interval: Duration::ZERO,
            job_id: None,
        });
        let mut fin = snap(10, 10);
        fin.stop_cause = Some(StopCause::Completed);
        p.finish(&fin);
        assert!(path.exists(), "the final heartbeat itself is written");
        assert!(!stale.exists(), "finish removes the stale .tmp sibling");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn throttling_skips_rapid_waves_but_finish_always_emits() {
        let p = Progress::new(ProgressConfig {
            stderr_line: false,
            heartbeat: None,
            min_interval: Duration::from_secs(3600),
            job_id: None,
        });
        p.wave(&snap(1, 10)); // first: emits
        p.wave(&snap(2, 10)); // throttled
        p.wave(&snap(3, 10)); // throttled
        assert_eq!(p.updates(), 1);
        let mut fin = snap(10, 10);
        fin.stop_cause = Some(StopCause::Converged);
        p.finish(&fin);
        assert_eq!(p.updates(), 2);
    }

    #[test]
    fn eta_extrapolates_fixed_and_adaptive() {
        // Fixed: 5 of 10 done in 0.5s -> 0.5s remaining.
        let eta = snap(5, 10).est_remaining_secs().unwrap();
        assert!((eta - 0.5).abs() < 1e-9, "eta = {eta}");
        // Adaptive: ci twice the target -> needs 4x the iterations.
        let mut s = snap(5, 1000);
        s.ci_rel = Some(0.10);
        s.target_rel = Some(0.05);
        let eta = s.est_remaining_secs().unwrap();
        assert!((eta - 1.5).abs() < 1e-9, "eta = {eta}"); // 15 more iters at 0.1s
                                                          // No iterations yet -> unknowable.
        assert!(snap(0, 10).est_remaining_secs().is_none());
        // Converged already -> zero.
        s.ci_rel = Some(0.01);
        assert_eq!(s.est_remaining_secs(), Some(0.0));
    }

    #[test]
    fn degenerate_snapshots_render_without_nan() {
        // Zero budget (e.g. a resume that already covered the whole run)
        // and zero elapsed both sit on division edges; the renders must
        // stay finite and the heartbeat parseable.
        let mut s = snap(0, 0);
        s.elapsed = Duration::ZERO;
        for text in [s.render_line(), s.render_heartbeat(1, None)] {
            assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        }
        assert!(s.render_heartbeat(1, None).contains("\"percent\":0"));
        assert!(s.est_remaining_secs().is_none());
        // Iterations done against a zero budget: percent guard still holds.
        let s = snap(3, 0);
        assert!(s.render_line().contains("(0%)"));
        assert!(!s.render_heartbeat(2, None).contains("NaN"));
        // Zero elapsed with work done extrapolates to a zero ETA, not NaN.
        let mut s = snap(4, 10);
        s.elapsed = Duration::ZERO;
        assert_eq!(s.est_remaining_secs(), Some(0.0));
    }

    #[test]
    fn render_line_formats_both_modes() {
        let line = snap(5, 10).render_line();
        assert!(line.contains("iter 5/10 (50%)"), "{line}");
        let mut s = snap(5, 1000);
        s.ci_rel = Some(0.062);
        s.target_rel = Some(0.05);
        let line = s.render_line();
        assert!(line.contains("ci ±6.20%"), "{line}");
        s.stop_cause = Some(StopCause::Converged);
        assert!(s.render_line().contains("[converged]"));
    }
}
