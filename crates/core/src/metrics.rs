//! Engine-side metric resolution.
//!
//! The registry lookup (name → handle) takes a mutex, so the engine does it
//! exactly once per counting run, before any iteration starts. The hot
//! loops then carry an `Option<&RunMetrics>`: with metrics absent or
//! disabled this is `None` and each instrumentation site costs a single
//! pointer check.
//!
//! # Metric names
//!
//! All engine metrics live under these names (schema `fascia-obs/1`,
//! additive-only — see DESIGN.md §Observability):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `engine.coloring_ns` | histogram | per-iteration random-coloring time |
//! | `engine.iteration_ns` | histogram | per-iteration full DP time |
//! | `engine.dp_ns.<node>` | histogram | per-subtemplate DP time (one per partition node, e.g. `n03.cut5`) |
//! | `engine.iterations.total` | counter | iterations run (shards = per-thread iteration counts, outer-loop balance) |
//! | `engine.iterations.colorful` | counter | iterations whose root total was non-zero (colorful-hit rate) |
//! | `engine.iterations.saved` | counter | budgeted iterations an adaptive stop rule did not need to run |
//! | `engine.adaptive.estimate` | gauge | running point estimate after the latest convergence check (rounded to u64) |
//! | `engine.adaptive.ci_half_width` | gauge | running CI half-width after the latest convergence check (rounded to u64) |
//! | `engine.adaptive.checks` | counter | convergence checks performed (waves completed) |
//! | `engine.threads` | gauge | worker threads of the resolved parallel mode |
//! | `engine.degrade.layout_fallbacks` | counter | ladder steps taken below the preferred table layout under a memory budget |
//! | `engine.iterations.poisoned` | counter | iteration attempts that panicked and were isolated |
//! | `engine.iterations.retried` | counter | poisoned iterations retried with a fresh coloring seed |
//! | `engine.checkpoint.writes` | counter | checkpoint files flushed (wave barriers + final) |
//! | `cut.roots.visited` / `cut.roots.skipped` | counter | root vertices processed vs. skipped by the "initialized" check (shards = per-thread work counts) |
//! | `cut.neighbors.visited` / `cut.neighbors.skipped` | counter | passive-side neighbor reads vs. skips |
//! | `triangle.candidates` / `triangle.colorful` | counter | triangle closures found vs. those with all-distinct colors |
//! | `table.bytes.peak` | gauge | measured peak live DP bytes within one iteration |
//! | `table.bytes.built` | counter | bytes allocated across all built tables |
//! | `table.rows.materialized` / `table.rows.nonzero` | counter | rows the layout paid for vs. rows holding counts |
//! | `table.entries.live` | counter | non-zero (vertex, colorset) entries |
//! | `table.probe.inserts` / `table.probe.steps` | counter | hash-layout insert count and total probe steps |
//! | `table.probe.max` | gauge | longest hash probe chain seen |

use fascia_obs::{Counter, Gauge, Histogram, Metrics};
use fascia_table::{CountTable, TableStats};
use fascia_template::partition::NodeKind;
use fascia_template::PartitionTree;
use std::sync::Arc;

/// Handles for the cut-node inner loop (Alg. 2 line 2).
pub(crate) struct CutMetrics {
    pub roots_visited: Arc<Counter>,
    pub roots_skipped: Arc<Counter>,
    pub neighbors_visited: Arc<Counter>,
    pub neighbors_skipped: Arc<Counter>,
}

/// Handles for the triangle base case.
pub(crate) struct TriangleMetrics {
    pub candidates: Arc<Counter>,
    pub colorful: Arc<Counter>,
}

/// Handles for table construction accounting.
pub(crate) struct TableMetrics {
    pub bytes_peak: Arc<Gauge>,
    pub bytes_built: Arc<Counter>,
    pub rows_materialized: Arc<Counter>,
    pub rows_nonzero: Arc<Counter>,
    pub entries_live: Arc<Counter>,
    pub probe_inserts: Arc<Counter>,
    pub probe_steps: Arc<Counter>,
    pub probe_max: Arc<Gauge>,
}

impl TableMetrics {
    /// Records one built table's measured statistics.
    pub(crate) fn record<T: CountTable>(&self, table: &T) {
        let TableStats {
            allocated_bytes,
            rows_materialized,
            nonzero_rows,
            live_entries,
            probe,
            // Access counters go to the fascia-mem/1 collector, not the
            // registry: they accumulate for the table's whole lifetime,
            // while this hook fires at construction time.
            access: _,
        } = table.stats();
        self.bytes_built.add(allocated_bytes as u64);
        self.rows_materialized.add(rows_materialized as u64);
        self.rows_nonzero.add(nonzero_rows as u64);
        self.entries_live.add(live_entries as u64);
        if let Some(p) = probe {
            self.probe_inserts.add(p.inserts);
            self.probe_steps.add(p.probes);
            self.probe_max.set_max(p.max_probe);
        }
    }
}

/// All metric handles one counting run needs, resolved up front.
pub(crate) struct RunMetrics {
    pub coloring_ns: Arc<Histogram>,
    pub iteration_ns: Arc<Histogram>,
    /// Per-subtemplate DP span, indexed by partition-node id (`None` for
    /// nodes outside the unique evaluation order).
    pub node_ns: Vec<Option<Arc<Histogram>>>,
    pub iterations_total: Arc<Counter>,
    pub iterations_colorful: Arc<Counter>,
    pub iterations_saved: Arc<Counter>,
    pub adaptive_estimate: Arc<Gauge>,
    pub adaptive_ci: Arc<Gauge>,
    pub adaptive_checks: Arc<Counter>,
    pub threads: Arc<Gauge>,
    pub degrade_fallbacks: Arc<Counter>,
    pub iterations_poisoned: Arc<Counter>,
    pub iterations_retried: Arc<Counter>,
    pub checkpoint_writes: Arc<Counter>,
    pub cut: CutMetrics,
    pub triangle: TriangleMetrics,
    pub table: TableMetrics,
}

impl RunMetrics {
    /// Resolves every handle against `m` for the given partition tree.
    /// Returns `None` when metrics are absent or disabled, which is what
    /// the hot loops branch on.
    pub(crate) fn resolve(m: Option<&Metrics>, pt: &PartitionTree) -> Option<Self> {
        let m = m.filter(|m| m.is_enabled())?;
        let mut node_ns: Vec<Option<Arc<Histogram>>> = vec![None; pt.nodes().len()];
        for &idx in pt.unique_order() {
            let node = &pt.nodes()[idx as usize];
            let kind = match node.kind {
                NodeKind::Vertex => "vertex",
                NodeKind::Triangle { .. } => "triangle",
                NodeKind::Cut { .. } => "cut",
            };
            let name = format!("engine.dp_ns.n{idx:02}.{kind}{}", node.size);
            node_ns[idx as usize] = Some(m.histogram(&name));
        }
        Some(Self {
            coloring_ns: m.histogram("engine.coloring_ns"),
            iteration_ns: m.histogram("engine.iteration_ns"),
            node_ns,
            iterations_total: m.counter("engine.iterations.total"),
            iterations_colorful: m.counter("engine.iterations.colorful"),
            iterations_saved: m.counter("engine.iterations.saved"),
            adaptive_estimate: m.gauge("engine.adaptive.estimate"),
            adaptive_ci: m.gauge("engine.adaptive.ci_half_width"),
            adaptive_checks: m.counter("engine.adaptive.checks"),
            threads: m.gauge("engine.threads"),
            degrade_fallbacks: m.counter("engine.degrade.layout_fallbacks"),
            iterations_poisoned: m.counter("engine.iterations.poisoned"),
            iterations_retried: m.counter("engine.iterations.retried"),
            checkpoint_writes: m.counter("engine.checkpoint.writes"),
            cut: CutMetrics {
                roots_visited: m.counter("cut.roots.visited"),
                roots_skipped: m.counter("cut.roots.skipped"),
                neighbors_visited: m.counter("cut.neighbors.visited"),
                neighbors_skipped: m.counter("cut.neighbors.skipped"),
            },
            triangle: TriangleMetrics {
                candidates: m.counter("triangle.candidates"),
                colorful: m.counter("triangle.colorful"),
            },
            table: TableMetrics {
                bytes_peak: m.gauge("table.bytes.peak"),
                bytes_built: m.counter("table.bytes.built"),
                rows_materialized: m.counter("table.rows.materialized"),
                rows_nonzero: m.counter("table.rows.nonzero"),
                entries_live: m.counter("table.entries.live"),
                probe_inserts: m.counter("table.probe.inserts"),
                probe_steps: m.counter("table.probe.steps"),
                probe_max: m.gauge("table.probe.max"),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_template::{PartitionStrategy, Template};

    #[test]
    fn resolve_requires_enabled_metrics() {
        let t = Template::path(5);
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert!(RunMetrics::resolve(None, &pt).is_none());
        let off = Metrics::disabled();
        assert!(RunMetrics::resolve(Some(&off), &pt).is_none());
        let on = Metrics::new();
        let rm = RunMetrics::resolve(Some(&on), &pt).unwrap();
        // Every node in the unique evaluation order got a span histogram.
        for &idx in pt.unique_order() {
            assert!(rm.node_ns[idx as usize].is_some());
        }
    }

    /// Sharded counters stay exact when driven from a rayon parallel
    /// iterator, and per-worker registries merge without loss.
    #[test]
    fn counter_merge_across_rayon_scope_sums_exactly() {
        use rayon::prelude::*;

        // One shared counter incremented from rayon workers.
        let shared = Metrics::new();
        let c = shared.counter("shared.work");
        let n: usize = (0..50_000usize)
            .into_par_iter()
            .map(|_| {
                c.inc();
                1usize
            })
            .sum();
        assert_eq!(n, 50_000);
        assert_eq!(c.get(), 50_000);
        assert_eq!(c.shard_values().iter().sum::<u64>(), 50_000);

        // Per-worker registries merged into a total.
        let total = Metrics::new();
        let locals: Vec<Metrics> = (0..8usize)
            .into_par_iter()
            .map(|_| {
                let local = Metrics::new();
                for _ in 0..10_000 {
                    local.counter("work").inc();
                }
                local
            })
            .collect();
        for local in &locals {
            total.merge(local);
        }
        assert_eq!(total.counter("work").get(), 80_000);
    }

    #[test]
    fn node_span_names_describe_the_subtemplate() {
        let t = Template::path(4);
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        let m = Metrics::new();
        RunMetrics::resolve(Some(&m), &pt).unwrap();
        let json = m.to_json();
        assert!(
            json.contains("engine.dp_ns.n"),
            "expected per-node histograms in {json}"
        );
    }
}
