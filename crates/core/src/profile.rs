//! Engine-side profiler-phase resolution — the sampling-profiler
//! counterpart of the `trace` module.
//!
//! Interning a phase name takes a short mutex, so the engine does it
//! exactly once per counting run, before any iteration starts. The hot
//! loops then carry an `Option<&RunProf>`: with profiling absent this is
//! `None` and each site costs a single pointer check; with profiling
//! present entering a phase is one relaxed store plus one release
//! `fetch_add` into the current thread's phase slot.
//!
//! The phase names deliberately match the trace-span taxonomy
//! (`iteration`, `coloring`, `wave`, `dp.n<idx>.<kind><size>`,
//! `checkpoint.flush`) so a flamegraph and a Chrome trace of the same run
//! speak the same vocabulary. The cut-node phases additionally split into
//! `kernel.scalar` / `kernel.vectorized` (row computation) and
//! `table.build` (consuming kernel output into the chosen layout), which
//! is what the kernel A/B recipe in EXPERIMENTS.md compares.

use fascia_obs::{PhaseGuard, PhaseId, Profiler};
use fascia_template::partition::NodeKind;
use fascia_template::PartitionTree;
use std::sync::Arc;

/// All profiler-phase handles one counting run needs, interned up front.
pub(crate) struct RunProf {
    pub profiler: Arc<Profiler>,
    pub iteration: PhaseId,
    pub coloring: PhaseId,
    pub wave: PhaseId,
    /// Per-subtemplate phase, indexed by partition-node id (`None` for
    /// nodes outside the unique evaluation order).
    pub node: Vec<Option<PhaseId>>,
    pub checkpoint_flush: PhaseId,
    /// Scalar cut-kernel phase (nested inside the node phase), so a
    /// flamegraph separates row computation from table construction.
    pub kernel_scalar: PhaseId,
    /// Vectorized cut-kernel phase (see `kernel` module).
    pub kernel_vectorized: PhaseId,
    /// Table-construction phase: consuming kernel output into the chosen
    /// layout.
    pub table_build: PhaseId,
}

impl RunProf {
    /// Interns every phase against `profiler` for the given partition
    /// tree. Returns `None` when profiling is absent, which is what the
    /// hot loops branch on.
    pub(crate) fn resolve(profiler: Option<&Arc<Profiler>>, pt: &PartitionTree) -> Option<Self> {
        let profiler = Arc::clone(profiler?);
        let mut node: Vec<Option<PhaseId>> = vec![None; pt.nodes().len()];
        for &idx in pt.unique_order() {
            let n = &pt.nodes()[idx as usize];
            let kind = match n.kind {
                NodeKind::Vertex => "vertex",
                NodeKind::Triangle { .. } => "triangle",
                NodeKind::Cut { .. } => "cut",
            };
            let name = format!("dp.n{idx:02}.{kind}{}", n.size);
            node[idx as usize] = Some(profiler.intern(&name));
        }
        Some(Self {
            iteration: profiler.intern("iteration"),
            coloring: profiler.intern("coloring"),
            wave: profiler.intern("wave"),
            node,
            checkpoint_flush: profiler.intern("checkpoint.flush"),
            kernel_scalar: profiler.intern("kernel.scalar"),
            kernel_vectorized: profiler.intern("kernel.vectorized"),
            table_build: profiler.intern("table.build"),
            profiler,
        })
    }

    /// Publishes a phase if profiling is on — the engine's idiom for
    /// optional instrumentation (`None` costs one branch).
    #[inline]
    pub(crate) fn enter_opt<'a>(
        pr: Option<&'a RunProf>,
        pick: impl FnOnce(&RunProf) -> PhaseId,
    ) -> Option<PhaseGuard<'a>> {
        pr.map(|p| p.profiler.enter(pick(p)))
    }

    /// Publishes the per-subtemplate phase for partition node `idx`, if
    /// both profiling and the node's phase are present.
    #[inline]
    pub(crate) fn node_enter_opt<'a>(
        pr: Option<&'a RunProf>,
        idx: usize,
    ) -> Option<PhaseGuard<'a>> {
        let p = pr?;
        Some(p.profiler.enter(p.node[idx]?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_template::{PartitionStrategy, Template};

    #[test]
    fn resolve_requires_a_profiler() {
        let t = Template::path(5);
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert!(RunProf::resolve(None, &pt).is_none());
        let prof = Arc::new(Profiler::new());
        let pr = RunProf::resolve(Some(&prof), &pt).unwrap();
        for &idx in pt.unique_order() {
            assert!(pr.node[idx as usize].is_some());
        }
        // Re-resolving against the same profiler reuses the intern table.
        let again = RunProf::resolve(Some(&prof), &pt).unwrap();
        assert_eq!(pr.iteration, again.iteration);
    }

    #[test]
    fn optional_helpers_noop_when_absent() {
        assert!(RunProf::enter_opt(None, |p| p.iteration).is_none());
        assert!(RunProf::node_enter_opt(None, 0).is_none());
    }
}
