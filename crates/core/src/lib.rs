//! FASCIA core: the color-coding approximate subgraph counting engine.
//!
//! This crate ties the substrates together into the paper's system:
//!
//! * [`coloring`] — seeded random vertex colorings (Alg. 1, line 4),
//! * [`engine`] — the bottom-up dynamic program over a template partition
//!   tree (Alg. 2), with selectable table layouts, partition strategies,
//!   and parallel modes, plus labeled counting and per-vertex (rooted)
//!   counts,
//! * [`parallel`] — the paper's two OpenMP loops mapped onto rayon: inner
//!   (over graph vertices) and outer (over color-coding iterations),
//! * [`exact`] — the naive exhaustive counter and embedding enumerator
//!   used for error analysis (§V-D) and the §V-C comparison,
//! * [`enumerate`] — a pruned enumeration baseline standing in for MODA,
//! * [`motifs`] — motif finding over all tree topologies of a size
//!   (§V-E),
//! * [`gdd`] — graphlet degree distributions and Pržulj's agreement
//!   (§V-F),
//! * [`stats`] — streaming (Welford) and batch statistics over
//!   per-iteration estimates, plus the adaptive [`StopRule`] that lets the
//!   engine stop as soon as the running confidence interval is tight
//!   instead of exhausting the pessimistic a-priori iteration bound,
//! * [`resilience`] — checkpoint/resume of partial runs, cooperative
//!   cancellation with deadlines, and deterministic fault-injection hooks
//!   (memory-budget degradation and worker panic isolation live in the
//!   engine itself; see DESIGN.md §11).
//!
//! Every entry point accepts an optional [`fascia_obs::Metrics`] registry
//! via [`engine::CountConfig::metrics`]; see the `metrics` module docs for
//! the metric names the engine records.

pub mod chaos;
pub mod coloring;
pub mod directed;
pub mod distsim;
pub mod engine;
pub mod enumerate;
pub mod est;
pub mod exact;
pub mod gdd;
pub mod kernel;
pub mod mem;
pub(crate) mod metrics;
pub mod motifs;
pub mod parallel;
pub(crate) mod profile;
pub mod progress;
pub mod resilience;
pub mod sample;
pub mod stats;
pub(crate) mod trace;

pub use chaos::{Chaos, ChaosParseError, ChaosRun, ChaosSpec, IoSite, CHAOS_ENV};
pub use engine::{
    count_template, count_template_labeled, rooted_counts, CountConfig, CountError, CountResult,
};
pub use est::EstCollector;
pub use kernel::KernelKind;
pub use mem::{MemCollector, NodeMemStats};
pub use parallel::ParallelMode;
pub use progress::{Progress, ProgressConfig, ProgressSnapshot};
pub use resilience::{
    atomic_write, atomic_write_durable, CancelToken, Checkpoint, CheckpointConfig, FaultInjection,
    Json, StopCause,
};
pub use sample::sample_embeddings;
pub use stats::{count_until_converged, normal_quantile, EstimateStats, StopRule, Welford};
