//! Uniform random sampling of template embeddings — the "Enumeration" half
//! of FASCIA at scales where exhaustive listing is impossible.
//!
//! One color-coding iteration's DP tables implicitly encode *every
//! colorful embedding* of the template under that coloring, each with
//! weight 1. Backtracking through the tables top-down — choosing a root
//! (vertex, color set) cell proportional to its count, then recursively
//! splitting each cut node's count across (neighbor, color-split) choices —
//! draws an embedding uniformly at random among the iteration's colorful
//! embeddings. Because every embedding is colorful with the same
//! probability `P`, embeddings sampled this way across iterations are
//! uniform over *all* embeddings in the graph.
//!
//! This extends the paper (which only counts); it is the natural
//! enumeration companion the title promises, and the sampling ideas later
//! systems (e.g. MOTIVO) built on.

use crate::coloring::{iteration_seed, random_coloring};
use crate::engine::{
    cut_rows, effective_colors, triangle_rows, CountConfig, CountError, DpContext, Stored,
};
use fascia_combin::set_of_index;
use fascia_graph::Graph;
use fascia_table::{CountTable, LazyTable};
use fascia_template::partition::NodeKind;
use fascia_template::{PartitionTree, Template};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sampled embedding: `image[i]` is the graph vertex that template
/// vertex `i` maps to.
pub type Embedding = Vec<u32>;

/// Draws up to `samples` embeddings of `t` in `g`, uniformly at random
/// among non-induced occurrences (as injective homomorphisms).
///
/// Iterations whose coloring yields no colorful embedding are skipped.
/// The coloring budget is the stop rule's iteration budget
/// ([`CountConfig::stop_rule`]): `cfg.iterations` colorings classically,
/// or the rule's `max_iters` when an adaptive rule is configured. If every
/// budgeted coloring comes up empty the result is empty (the template most
/// likely does not occur).
pub fn sample_embeddings(
    g: &Graph,
    t: &Template,
    cfg: &CountConfig,
    samples: usize,
) -> Result<Vec<Embedding>, CountError> {
    if t.labels().is_some() {
        return Err(CountError::LabelsRequired);
    }
    let k = effective_colors(t, cfg)?;
    let pt = PartitionTree::build(t, cfg.strategy)?;
    let ctx = DpContext::new(t, &pt, k);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x005A_3B17);
    let mut out = Vec::with_capacity(samples);
    if matches!(pt.root().kind, NodeKind::Vertex) {
        // Single-vertex template: every vertex is an occurrence.
        for _ in 0..samples {
            out.push(vec![rng.gen_range(0..g.num_vertices()) as u32]);
        }
        return Ok(out);
    }
    let budget = cfg.stop_rule().budget() as u64;
    let mut iteration = 0u64;
    while out.len() < samples && iteration < budget {
        let coloring = random_coloring(g.num_vertices(), k, iteration_seed(cfg.seed, iteration));
        iteration += 1;
        let tables = build_retained_tables(g, t, &pt, &ctx, &coloring);
        let sampler = Sampler {
            g,
            pt: &pt,
            ctx: &ctx,
            coloring: &coloring,
            tables: &tables,
        };
        let Some(root_weight) = sampler.node_total(0) else {
            continue;
        };
        if root_weight <= 0.0 {
            continue;
        }
        // Draw several embeddings per successful coloring, bounded so one
        // lucky coloring does not dominate the sample.
        let per_coloring = samples.div_ceil(budget as usize).max(1);
        for _ in 0..per_coloring {
            if out.len() >= samples {
                break;
            }
            if let Some(emb) = sampler.sample_root(&mut rng) {
                out.push(emb);
            }
        }
    }
    Ok(out)
}

/// Runs one DP pass keeping every canonical class's table alive.
fn build_retained_tables(
    g: &Graph,
    t: &Template,
    pt: &PartitionTree,
    ctx: &DpContext,
    coloring: &[u8],
) -> Vec<Option<Stored<LazyTable>>> {
    let n = g.num_vertices();
    let mut stored: Vec<Option<Stored<LazyTable>>> = Vec::new();
    stored.resize_with(pt.num_canon_classes(), || None);
    for &idx in pt.unique_order() {
        let node = &pt.nodes()[idx as usize];
        let cid = node.canon_id as usize;
        match node.kind {
            NodeKind::Vertex => {
                stored[cid] = Some(Stored::Single { label: None });
            }
            NodeKind::Triangle { partners } => {
                let rows = triangle_rows(g, None, t, node, partners, ctx, coloring, false);
                stored[cid] = Some(Stored::Table(LazyTable::from_rows(n, ctx.nc[3], rows)));
            }
            NodeKind::Cut { active, passive } => {
                let a_node = &pt.nodes()[active as usize];
                let p_node = &pt.nodes()[passive as usize];
                let rows = {
                    let act = stored[a_node.canon_id as usize]
                        .as_ref()
                        .expect("active computed");
                    let pas = stored[p_node.canon_id as usize]
                        .as_ref()
                        .expect("passive computed");
                    cut_rows(
                        g, None, node, a_node, p_node, act, pas, ctx, coloring, false,
                    )
                };
                stored[cid] = Some(Stored::Table(LazyTable::from_rows(
                    n,
                    ctx.nc[node.size as usize],
                    rows,
                )));
            }
        }
    }
    stored
}

struct Sampler<'a> {
    g: &'a Graph,
    pt: &'a PartitionTree,
    ctx: &'a DpContext,
    coloring: &'a [u8],
    tables: &'a [Option<Stored<LazyTable>>],
}

impl<'a> Sampler<'a> {
    fn table(&self, node_idx: u32) -> &Stored<LazyTable> {
        let cid = self.pt.nodes()[node_idx as usize].canon_id as usize;
        self.tables[cid].as_ref().expect("table computed")
    }

    /// Total colorful count of a node's table, if it is materialized.
    fn node_total(&self, node_idx: u32) -> Option<f64> {
        match self.table(node_idx) {
            Stored::Single { .. } => None,
            Stored::Table(tb) => Some(tb.total()),
        }
    }

    /// Count of node `node_idx` at `(v, cs)`.
    fn value(&self, node_idx: u32, v: usize, cs: usize) -> f64 {
        match self.table(node_idx) {
            Stored::Single { .. } => {
                // Singleton color sets rank as the color itself.
                if self.coloring[v] as usize == cs {
                    1.0
                } else {
                    0.0
                }
            }
            Stored::Table(tb) => tb.get(v, cs),
        }
    }

    /// Samples a root cell proportional to its weight and descends.
    fn sample_root(&self, rng: &mut SmallRng) -> Option<Embedding> {
        let Stored::Table(tb) = self.table(0) else {
            // Single-vertex template: uniform vertex.
            let v = rng.gen_range(0..self.g.num_vertices());
            return Some(vec![v as u32]);
        };
        let total = tb.total();
        if total <= 0.0 {
            return None;
        }
        let mut r = rng.gen_range(0.0..total);
        for v in 0..self.g.num_vertices() {
            let Some(row) = tb.row_slice(v) else { continue };
            let row_sum: f64 = row.iter().sum();
            if r >= row_sum {
                r -= row_sum;
                continue;
            }
            for (cs, &w) in row.iter().enumerate() {
                if r < w {
                    let mut image = vec![u32::MAX; self.pt.root().size as usize];
                    let mut full_image = vec![u32::MAX; fascia_template::tree::MAX_TEMPLATE_SIZE];
                    self.descend(0, v, cs, rng, &mut full_image);
                    // Compact to template-vertex order.
                    for (tv, slot) in image.iter_mut().enumerate() {
                        *slot = full_image[tv];
                    }
                    debug_assert!(image.iter().all(|&x| x != u32::MAX));
                    return Some(image);
                }
                r -= w;
            }
            // Floating point slack: fall through to the next vertex.
        }
        None
    }

    /// Recursively assigns graph vertices to the template vertices of the
    /// subtemplate at `node_idx`, given its root maps to `v` with color
    /// set index `cs`.
    fn descend(&self, node_idx: u32, v: usize, cs: usize, rng: &mut SmallRng, image: &mut [u32]) {
        let node = &self.pt.nodes()[node_idx as usize];
        match node.kind {
            NodeKind::Vertex => {
                image[node.root as usize] = v as u32;
            }
            NodeKind::Triangle { partners } => {
                // Enumerate valid ordered (u, w) pairs consistent with cs,
                // pick one uniformly.
                let set = set_of_index(cs, 3, self.ctx.k, &self.ctx.binom);
                let cv = self.coloring[v];
                let mut choices: Vec<(u32, u32)> = Vec::new();
                for &u in self.g.neighbors(v) {
                    let cu = self.coloring[u as usize];
                    if cu == cv {
                        continue;
                    }
                    for &w in self.g.neighbors(v) {
                        if w == u {
                            continue;
                        }
                        let cw = self.coloring[w as usize];
                        if cw == cv || cw == cu {
                            continue;
                        }
                        let mut got = [cv, cu, cw];
                        got.sort_unstable();
                        if got[..] == set[..] && self.g.has_edge(u as usize, w as usize) {
                            choices.push((u, w));
                        }
                    }
                }
                let (u, w) = choices[rng.gen_range(0..choices.len())];
                image[node.root as usize] = v as u32;
                image[partners[0] as usize] = u;
                image[partners[1] as usize] = w;
            }
            NodeKind::Cut { active, passive } => {
                let total = match self.table(node_idx) {
                    Stored::Table(tb) => tb.get(v, cs),
                    Stored::Single { .. } => unreachable!("cut nodes are tables"),
                };
                debug_assert!(total > 0.0, "descended into an empty cell");
                let a_node = &self.pt.nodes()[active as usize];
                let h = node.size;
                let a = a_node.size;
                let mut r = rng.gen_range(0.0..total);
                // Walk (neighbor, split) choices exactly as the DP summed
                // them.
                if a == 1 {
                    let rem = &self.ctx.removals[&h];
                    let k = self.ctx.k;
                    let cv = self.coloring[v] as usize;
                    let rp = rem[cs * k + cv];
                    debug_assert!(rp >= 0, "root color must be in the set");
                    let ip = rp as usize;
                    for &u in self.g.neighbors(v) {
                        let w = self.value(passive, u as usize, ip);
                        if r < w {
                            image[node.root as usize] = v as u32;
                            self.descend(passive, u as usize, ip, rng, image);
                            return;
                        }
                        r -= w;
                    }
                } else {
                    let split = &self.ctx.splits[&(h, a)];
                    for &u in self.g.neighbors(v) {
                        for sp in split.splits(cs) {
                            let wa = self.value(active, v, sp.active as usize);
                            if wa == 0.0 {
                                continue;
                            }
                            let wp = self.value(passive, u as usize, sp.passive as usize);
                            let w = wa * wp;
                            if r < w {
                                self.descend(active, v, sp.active as usize, rng, image);
                                self.descend(passive, u as usize, sp.passive as usize, rng, image);
                                return;
                            }
                            r -= w;
                        }
                    }
                }
                // Floating-point slack: retry deterministically with the
                // first non-zero choice.
                for &u in self.g.neighbors(v) {
                    if a == 1 {
                        let rem = &self.ctx.removals[&h];
                        let ip = rem[cs * self.ctx.k + self.coloring[v] as usize] as usize;
                        if self.value(passive, u as usize, ip) > 0.0 {
                            image[node.root as usize] = v as u32;
                            self.descend(passive, u as usize, ip, rng, image);
                            return;
                        }
                    } else {
                        let split = &self.ctx.splits[&(h, a)];
                        for sp in split.splits(cs) {
                            if self.value(active, v, sp.active as usize) > 0.0
                                && self.value(passive, u as usize, sp.passive as usize) > 0.0
                            {
                                self.descend(active, v, sp.active as usize, rng, image);
                                self.descend(passive, u as usize, sp.passive as usize, rng, image);
                                return;
                            }
                        }
                    }
                }
                unreachable!("non-zero cell must have a decomposition");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_exact;
    use fascia_graph::gen::gnm;
    use std::collections::HashMap;

    fn cfg(iters: usize) -> CountConfig {
        CountConfig {
            iterations: iters,
            seed: 404,
            ..CountConfig::default()
        }
    }

    fn validate(g: &Graph, t: &Template, emb: &[u32]) {
        assert_eq!(emb.len(), t.size());
        let mut uniq: Vec<u32> = emb.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), t.size(), "image must be injective: {emb:?}");
        for &(a, b) in t.edges() {
            assert!(
                g.has_edge(emb[a as usize] as usize, emb[b as usize] as usize),
                "template edge ({a},{b}) unmapped in {emb:?}"
            );
        }
    }

    #[test]
    fn samples_are_valid_embeddings() {
        let g = gnm(40, 120, 6);
        for t in [
            Template::path(3),
            Template::path(5),
            Template::star(4),
            Template::spider(&[1, 1, 2]),
            Template::triangle(),
        ] {
            let samples = sample_embeddings(&g, &t, &cfg(200), 50).unwrap();
            assert!(!samples.is_empty(), "no samples for {t:?}");
            for emb in &samples {
                validate(&g, &t, emb);
            }
        }
    }

    #[test]
    fn sampling_is_roughly_uniform_over_occurrences() {
        // Small graph, P3: every occurrence should appear with similar
        // frequency over many samples.
        let g = gnm(12, 20, 3);
        let t = Template::path(3);
        let exact = count_exact(&g, &t) as usize;
        assert!(exact > 4);
        let samples = sample_embeddings(&g, &t, &cfg(4000), 3000).unwrap();
        assert!(samples.len() >= 2000);
        let mut freq: HashMap<Vec<u32>, usize> = HashMap::new();
        for emb in &samples {
            // Canonical occurrence key: sorted edge set.
            let mut key: Vec<u32> = Vec::new();
            let (a, b, c) = (emb[0], emb[1], emb[2]);
            let mut edges = [(a.min(b), a.max(b)), (b.min(c), b.max(c))];
            edges.sort_unstable();
            for (x, y) in edges {
                key.push(x);
                key.push(y);
            }
            *freq.entry(key).or_default() += 1;
        }
        // All occurrences should be hit given this sample size.
        assert_eq!(freq.len(), exact, "every occurrence sampled at least once");
        let mean = samples.len() as f64 / exact as f64;
        for (occ, &count) in &freq {
            assert!(
                (count as f64) > 0.2 * mean && (count as f64) < 5.0 * mean,
                "occurrence {occ:?} sampled {count} times vs mean {mean:.1}"
            );
        }
    }

    #[test]
    fn absent_template_yields_no_samples() {
        // Star-5 cannot embed in a cycle.
        let ring: Vec<(u32, u32)> = (0..12u32).map(|v| (v, (v + 1) % 12)).collect();
        let g = Graph::from_edges(12, &ring);
        let samples = sample_embeddings(&g, &Template::star(5), &cfg(30), 10).unwrap();
        assert!(samples.is_empty());
    }

    #[test]
    fn labeled_templates_rejected() {
        let g = gnm(10, 20, 1);
        let t = Template::path(3).with_labels(vec![0, 0, 0]).unwrap();
        assert!(matches!(
            sample_embeddings(&g, &t, &cfg(5), 5),
            Err(CountError::LabelsRequired)
        ));
    }

    #[test]
    fn single_vertex_template_samples_vertices() {
        let g = gnm(10, 15, 2);
        let t = Template::from_edges(1, &[]).unwrap();
        let samples = sample_embeddings(&g, &t, &cfg(5), 8).unwrap();
        assert_eq!(samples.len(), 8);
        for emb in samples {
            assert_eq!(emb.len(), 1);
            assert!((emb[0] as usize) < 10);
        }
    }
}
