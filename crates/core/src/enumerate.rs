//! Pruned enumeration baseline (the paper's MODA comparator, §V-C).
//!
//! MODA is a closed-source motif tool the paper raced against on the
//! circuit network; we reproduce the comparison with our own enumeration
//! counter that, unlike the naive backtracking of [`crate::exact`], adds
//! the standard pruning rules enumeration tools use:
//!
//! * candidate vertices must have degree ≥ the template vertex's degree,
//! * the matching order maximizes back-edge constraints (most-constrained
//!   template vertex first),
//! * the neighborhood-degree multiset of a candidate must dominate the
//!   template vertex's.
//!
//! It returns identical counts to the naive counter — only faster — which
//! is exactly the relationship between MODA and the naive scheme in the
//! paper's Table of §V-C.

use fascia_graph::Graph;
use fascia_template::automorphism::automorphisms;
use fascia_template::Template;
use rayon::prelude::*;

/// Matching order: greedy most-constrained-first (max back-degree, then max
/// template degree), starting from the highest-degree template vertex.
fn pruned_order(t: &Template) -> (Vec<u8>, Vec<Vec<u8>>) {
    let k = t.size();
    let start = (0..k as u8).max_by_key(|&v| t.degree(v)).unwrap_or(0);
    let mut order = vec![start];
    let mut placed = vec![false; k];
    placed[start as usize] = true;
    while order.len() < k {
        let next = (0..k as u8)
            .filter(|&v| !placed[v as usize])
            .filter(|&v| t.neighbors(v).iter().any(|&u| placed[u as usize]))
            .max_by_key(|&v| {
                let back = t
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| placed[u as usize])
                    .count();
                (back, t.degree(v))
            })
            .expect("template is connected");
        placed[next as usize] = true;
        order.push(next);
    }
    let pos = {
        let mut p = vec![0usize; k];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    let back: Vec<Vec<u8>> = order
        .iter()
        .map(|&v| {
            t.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| pos[u as usize] < pos[v as usize])
                .collect()
        })
        .collect();
    (order, back)
}

/// Exact non-induced occurrence count via pruned enumeration.
///
/// Identical results to [`crate::exact::count_exact`].
pub fn count_exact_pruned(g: &Graph, t: &Template) -> u128 {
    let (order, back) = pruned_order(t);
    let pos = {
        let mut p = vec![0usize; t.size()];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    let tdeg: Vec<usize> = order.iter().map(|&v| t.degree(v)).collect();
    let n = g.num_vertices();
    let homs: u128 = (0..n)
        .into_par_iter()
        .map(|v0| {
            if g.degree(v0) < tdeg[0] {
                return 0u128;
            }
            let k = t.size();
            let mut image = vec![u32::MAX; k];
            image[0] = v0 as u32;
            let mut used = vec![false; n];
            used[v0] = true;
            extend_pruned(g, &order, &back, &pos, &tdeg, &mut image, &mut used, 1)
        })
        .sum();
    let alpha = automorphisms(t) as u128;
    debug_assert_eq!(homs % alpha, 0);
    homs / alpha
}

#[allow(clippy::too_many_arguments)]
fn extend_pruned(
    g: &Graph,
    order: &[u8],
    back: &[Vec<u8>],
    pos: &[usize],
    tdeg: &[usize],
    image: &mut [u32],
    used: &mut [bool],
    depth: usize,
) -> u128 {
    if depth == order.len() {
        return 1;
    }
    let anchors = &back[depth];
    // Anchor on the already-mapped neighbor whose image has the smallest
    // degree (fewest candidates).
    let anchor_img = anchors
        .iter()
        .map(|&a| image[pos[a as usize]] as usize)
        .min_by_key(|&u| g.degree(u))
        .expect("connected template has a mapped neighbor");
    let mut total = 0u128;
    'cand: for &cand in g.neighbors(anchor_img) {
        let c = cand as usize;
        if used[c] || g.degree(c) < tdeg[depth] {
            continue;
        }
        for &other in anchors {
            let img = image[pos[other as usize]] as usize;
            if img != anchor_img && !g.has_edge(img, c) {
                continue 'cand;
            }
        }
        image[depth] = cand;
        used[c] = true;
        total += extend_pruned(g, order, back, pos, tdeg, image, used, depth + 1);
        used[c] = false;
    }
    image[depth] = u32::MAX;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_exact;
    use fascia_graph::gen::{gnm, random_connected};
    use fascia_template::gen::all_free_trees;

    #[test]
    fn matches_naive_on_random_graphs() {
        let g = gnm(40, 120, 11);
        for t in [
            Template::path(3),
            Template::path(5),
            Template::star(5),
            Template::spider(&[1, 1, 2]),
            Template::triangle(),
        ] {
            assert_eq!(
                count_exact_pruned(&g, &t),
                count_exact(&g, &t),
                "template {t:?}"
            );
        }
    }

    #[test]
    fn matches_naive_on_all_size5_trees() {
        let g = random_connected(30, 70, 3);
        for t in all_free_trees(5) {
            assert_eq!(count_exact_pruned(&g, &t), count_exact(&g, &t));
        }
    }

    #[test]
    fn degree_pruning_zeroes_star_on_path_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(count_exact_pruned(&g, &Template::star(4)), 0);
    }

    #[test]
    fn order_is_most_constrained_first() {
        let (order, back) = pruned_order(&Template::star(5));
        assert_eq!(order[0], 0, "star center first");
        // Every subsequent vertex has exactly one back neighbor (the hub).
        for b in &back[1..] {
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn triangle_order_has_two_back_edges_at_depth_two() {
        let (_, back) = pruned_order(&Template::triangle());
        assert_eq!(back[2].len(), 2);
    }
}
