//! Statistics over per-iteration estimates.
//!
//! Each color-coding iteration produces an independent, identically
//! distributed, unbiased estimate of the true count; the final answer is
//! their mean (Alg. 1 line 7). This module summarizes the sample — mean,
//! variance, standard error, and a normal-approximation confidence
//! interval — so callers can decide *online* whether they have run enough
//! iterations, instead of trusting the (wildly conservative) worst-case
//! bound of Alg. 1 line 2.

/// Summary statistics of a series of per-iteration estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateStats {
    /// Number of iterations.
    pub n: usize,
    /// Sample mean (the count estimate).
    pub mean: f64,
    /// Unbiased sample variance (0 for n < 2).
    pub variance: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Half-width of the ~95% confidence interval (1.96 σ/√n).
    pub ci95_half_width: f64,
}

impl EstimateStats {
    /// Computes statistics from per-iteration estimates.
    ///
    /// # Panics
    /// Panics on an empty series.
    pub fn from_series(series: &[f64]) -> Self {
        assert!(!series.is_empty(), "need at least one iteration");
        let n = series.len();
        let mean = series.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        let std_error = (variance / n as f64).sqrt();
        Self {
            n,
            mean,
            variance,
            std_error,
            ci95_half_width: 1.96 * std_error,
        }
    }

    /// Relative half-width of the 95% CI (∞ when the mean is 0).
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci95_half_width / self.mean.abs()
        }
    }

    /// Whether the 95% CI contains `value`.
    pub fn ci_contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95_half_width
    }

    /// Estimated iterations needed to shrink the relative 95% CI below
    /// `target` (extrapolating the observed variance); `None` when the
    /// mean is zero or the target is already met.
    pub fn iterations_to_reach(&self, target: f64) -> Option<usize> {
        if self.mean == 0.0 || self.relative_ci95() <= target {
            return None;
        }
        let needed = (1.96 * self.variance.sqrt() / (target * self.mean.abs())).powi(2);
        Some(needed.ceil() as usize)
    }
}

/// Runs iterations adaptively until the relative 95% CI falls below
/// `target_rel_ci` or `max_iterations` is exhausted, whichever first.
/// Returns the result plus the statistics that stopped it.
///
/// This is the practical answer to the paper's observation that the
/// theoretical iteration bound is far too pessimistic: stop when the
/// observed spread says the estimate is tight.
pub fn count_until_converged(
    g: &fascia_graph::Graph,
    t: &fascia_template::Template,
    base: &crate::engine::CountConfig,
    target_rel_ci: f64,
    max_iterations: usize,
) -> Result<(crate::engine::CountResult, EstimateStats), crate::engine::CountError> {
    assert!(target_rel_ci > 0.0, "target must be positive");
    let mut iterations = base.iterations.clamp(4, max_iterations.max(1));
    loop {
        let cfg = crate::engine::CountConfig {
            iterations,
            ..base.clone()
        };
        let result = crate::engine::count_template(g, t, &cfg)?;
        let stats = EstimateStats::from_series(&result.per_iteration);
        if stats.relative_ci95() <= target_rel_ci || iterations >= max_iterations {
            return Ok((result, stats));
        }
        // Grow toward the extrapolated requirement, at least doubling.
        let next = stats
            .iterations_to_reach(target_rel_ci)
            .unwrap_or(iterations * 2)
            .max(iterations * 2);
        iterations = next.min(max_iterations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountConfig;
    use crate::exact::count_exact;
    use crate::parallel::ParallelMode;
    use fascia_graph::gen::gnm;
    use fascia_template::Template;

    #[test]
    fn basic_moments() {
        let s = EstimateStats::from_series(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 5.0);
        assert!((s.variance - 20.0 / 3.0).abs() < 1e-12);
        assert!((s.std_error - (20.0 / 12.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = EstimateStats::from_series(&[7.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!(s.iterations_to_reach(0.01), None);
    }

    #[test]
    fn ci_contains_behaves() {
        let s = EstimateStats::from_series(&[9.0, 10.0, 11.0]);
        assert!(s.ci_contains(10.0));
        assert!(!s.ci_contains(20.0));
    }

    #[test]
    fn ci_covers_truth_on_real_workload() {
        let g = gnm(60, 180, 5);
        let t = Template::path(4);
        let exact = count_exact(&g, &t) as f64;
        let cfg = CountConfig {
            iterations: 400,
            parallel: ParallelMode::Serial,
            seed: 31,
            ..CountConfig::default()
        };
        let r = crate::engine::count_template(&g, &t, &cfg).unwrap();
        let s = EstimateStats::from_series(&r.per_iteration);
        // With 400 samples the normal CI should comfortably cover truth
        // (allow 3 sigma slack to keep the test deterministic-robust).
        assert!(
            (exact - s.mean).abs() <= 3.0 * s.std_error,
            "exact {exact} vs mean {} ± {}",
            s.mean,
            s.std_error
        );
    }

    #[test]
    fn adaptive_run_converges() {
        let g = gnm(60, 180, 8);
        let t = Template::path(3);
        let base = CountConfig {
            iterations: 4,
            parallel: ParallelMode::Serial,
            seed: 17,
            ..CountConfig::default()
        };
        let (result, stats) = count_until_converged(&g, &t, &base, 0.05, 5000).unwrap();
        assert!(
            stats.relative_ci95() <= 0.05,
            "rel CI {}",
            stats.relative_ci95()
        );
        let exact = count_exact(&g, &t) as f64;
        let rel = (result.estimate - exact).abs() / exact;
        assert!(rel < 0.08, "estimate {} vs exact {exact}", result.estimate);
        assert!(result.per_iteration.len() <= 5000);
    }

    #[test]
    fn adaptive_run_respects_cap() {
        let g = gnm(30, 60, 9);
        let t = Template::path(5);
        let base = CountConfig {
            iterations: 4,
            parallel: ParallelMode::Serial,
            seed: 3,
            ..CountConfig::default()
        };
        // Absurdly tight target: must stop at the cap.
        let (result, _) = count_until_converged(&g, &t, &base, 1e-9, 64).unwrap();
        assert!(result.per_iteration.len() <= 64);
    }

    #[test]
    #[should_panic]
    fn empty_series_rejected() {
        EstimateStats::from_series(&[]);
    }
}
