//! Statistics over per-iteration estimates, and the adaptive stop rule.
//!
//! Each color-coding iteration produces an independent, identically
//! distributed, unbiased estimate of the true count; the final answer is
//! their mean (Alg. 1 line 7). This module summarizes the sample — mean,
//! variance, standard error, and a normal-approximation confidence
//! interval — so callers can decide *online* whether they have run enough
//! iterations, instead of trusting the (wildly conservative) worst-case
//! bound of Alg. 1 line 2.
//!
//! Two forms of the same statistics exist:
//!
//! * [`EstimateStats`] — batch summary of a finished series (two passes),
//! * [`Welford`] — a streaming accumulator the engine updates after every
//!   iteration, so the stopping decision costs O(1) per iteration and
//!   never re-walks the series.
//!
//! [`StopRule`] is the engine-facing policy built on top: run a fixed
//! iteration count, or stop as soon as the running confidence interval is
//! relatively tight ([`StopRule::RelativeError`]) — the practical answer
//! to the paper's observation (§V-D, Figs. 10–11) that the theoretical
//! bound overshoots by orders of magnitude.

/// A streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long series: the running mean is updated by the
/// scaled residual instead of accumulating a raw sum of squares, so
/// variance stays accurate even when the mean is large relative to the
/// spread (exactly the regime of subgraph counts, which reach 10^17).
///
/// ```
/// use fascia_core::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0, 8.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.variance() - 20.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> usize {
        self.n as usize
    }

    /// Running sample mean (0 before any sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Raw sum of squared deviations `M2` (the third of the accumulator's
    /// state fields, exposed so checkpoints can serialize the exact
    /// streaming state and verify it on resume).
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean, `sqrt(variance / n)`.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Confidence-interval half-width at critical value `z`
    /// (`z = 1.96` gives the ~95% interval).
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }

    /// Half-width relative to the running mean (∞ when the mean is 0, so
    /// a zero-count-so-far run never declares convergence).
    pub fn relative_ci(&self, z: f64) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci_half_width(z) / self.mean.abs()
        }
    }

    /// Batch-form summary of everything seen so far.
    ///
    /// # Panics
    /// Panics before the first sample (as [`EstimateStats::from_series`]
    /// does on an empty series).
    pub fn stats(&self) -> EstimateStats {
        assert!(self.n > 0, "need at least one iteration");
        let std_error = self.std_error();
        EstimateStats {
            n: self.count(),
            mean: self.mean,
            variance: self.variance(),
            std_error,
            ci95_half_width: 1.96 * std_error,
        }
    }
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over the open unit interval).
///
/// Used to turn a `delta` confidence parameter into the critical value
/// `z = Φ⁻¹(1 - δ/2)` of the stopping test.
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1)");
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// When a counting run should stop iterating.
///
/// Threaded through [`CountConfig::stop`](crate::engine::CountConfig::stop);
/// the engine consumes per-iteration estimates through a [`Welford`]
/// stream and re-evaluates the rule after every iteration (serial and
/// inner-loop modes) or after every wave of `num_threads` iterations
/// (outer-loop and hybrid modes, which keep one private table per worker
/// and therefore check convergence at wave barriers).
#[derive(Debug, Clone, PartialEq)]
pub enum StopRule {
    /// Run exactly `n` iterations (the paper's Alg. 1 behavior).
    FixedIterations(usize),
    /// Stop as soon as the running confidence interval at confidence
    /// `1 - delta` has relative half-width at most `epsilon` — i.e. the
    /// estimate is within `±epsilon·estimate` with probability
    /// `1 - delta` under the normal approximation.
    RelativeError {
        /// Target relative half-width of the confidence interval.
        epsilon: f64,
        /// Allowed probability that the interval misses the truth.
        delta: f64,
        /// Never stop before this many iterations (variance estimates
        /// from very few samples are unreliable; at least 2 is enforced).
        min_iters: usize,
        /// Hard budget: stop here even if unconverged.
        max_iters: usize,
    },
}

impl StopRule {
    /// A `RelativeError` rule with the library defaults: at least
    /// [`StopRule::DEFAULT_MIN_ITERS`] iterations, at most
    /// [`StopRule::DEFAULT_MAX_ITERS`].
    pub fn relative_error(epsilon: f64, delta: f64) -> Self {
        StopRule::RelativeError {
            epsilon,
            delta,
            min_iters: Self::DEFAULT_MIN_ITERS,
            max_iters: Self::DEFAULT_MAX_ITERS,
        }
    }

    /// Default `min_iters` of [`StopRule::relative_error`].
    pub const DEFAULT_MIN_ITERS: usize = 8;

    /// Default `max_iters` of [`StopRule::relative_error`].
    pub const DEFAULT_MAX_ITERS: usize = 10_000;

    /// The most iterations this rule can run.
    pub fn budget(&self) -> usize {
        match *self {
            StopRule::FixedIterations(n) => n,
            StopRule::RelativeError { max_iters, .. } => max_iters,
        }
    }

    /// The earliest iteration count at which [`StopRule::satisfied`] can
    /// become true; the engine sizes its first wave to this.
    pub fn min_iterations(&self) -> usize {
        match *self {
            StopRule::FixedIterations(n) => n,
            StopRule::RelativeError {
                min_iters,
                max_iters,
                ..
            } => min_iters.max(2).min(max_iters),
        }
    }

    /// Whether this rule can stop before exhausting its budget.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, StopRule::RelativeError { .. })
    }

    /// The critical value `z = Φ⁻¹(1 - δ/2)` of the stopping test
    /// (1.96 for a fixed rule, where it only feeds reporting).
    pub fn z(&self) -> f64 {
        match *self {
            StopRule::FixedIterations(_) => 1.96,
            StopRule::RelativeError { delta, .. } => normal_quantile(1.0 - delta / 2.0),
        }
    }

    /// Checks the parameters, returning a human-readable reason when the
    /// rule is unusable (non-positive epsilon, delta outside (0, 1), or
    /// an empty budget).
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            StopRule::FixedIterations(0) => Err("at least one iteration is required"),
            StopRule::FixedIterations(_) => Ok(()),
            StopRule::RelativeError {
                epsilon,
                delta,
                min_iters,
                max_iters,
            } => {
                // NaN parameters must fail validation, so the checks are
                // phrased to reject anything not strictly in range.
                if epsilon.is_nan() || epsilon <= 0.0 {
                    Err("epsilon must be positive")
                } else if delta.is_nan() || delta <= 0.0 || delta >= 1.0 {
                    Err("delta must be in (0, 1)")
                } else if max_iters == 0 {
                    Err("max_iters must be positive")
                } else if min_iters > max_iters {
                    Err("min_iters must not exceed max_iters")
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Whether the run may stop after `stream` has absorbed every
    /// completed iteration. Fixed rules stop exactly at their count; the
    /// relative rule stops at its budget or once the interval is tight.
    pub fn satisfied(&self, stream: &Welford) -> bool {
        match *self {
            StopRule::FixedIterations(n) => stream.count() >= n,
            StopRule::RelativeError {
                epsilon,
                min_iters,
                max_iters,
                ..
            } => {
                let n = stream.count();
                n >= max_iters || (n >= min_iters.max(2) && stream.relative_ci(self.z()) <= epsilon)
            }
        }
    }
}

/// Summary statistics of a series of per-iteration estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateStats {
    /// Number of iterations.
    pub n: usize,
    /// Sample mean (the count estimate).
    pub mean: f64,
    /// Unbiased sample variance (0 for n < 2).
    pub variance: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Half-width of the ~95% confidence interval (1.96 σ/√n).
    pub ci95_half_width: f64,
}

impl EstimateStats {
    /// Computes statistics from per-iteration estimates.
    ///
    /// # Panics
    /// Panics on an empty series.
    pub fn from_series(series: &[f64]) -> Self {
        assert!(!series.is_empty(), "need at least one iteration");
        let n = series.len();
        let mean = series.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        let std_error = (variance / n as f64).sqrt();
        Self {
            n,
            mean,
            variance,
            std_error,
            ci95_half_width: 1.96 * std_error,
        }
    }

    /// Relative half-width of the 95% CI (∞ when the mean is 0).
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci95_half_width / self.mean.abs()
        }
    }

    /// Whether the 95% CI contains `value`.
    pub fn ci_contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95_half_width
    }

    /// Estimated iterations needed to shrink the relative 95% CI below
    /// `target` (extrapolating the observed variance); `None` when the
    /// mean is zero or the target is already met.
    pub fn iterations_to_reach(&self, target: f64) -> Option<usize> {
        if self.mean == 0.0 || self.relative_ci95() <= target {
            return None;
        }
        let needed = (1.96 * self.variance.sqrt() / (target * self.mean.abs())).powi(2);
        Some(needed.ceil() as usize)
    }
}

/// Runs iterations adaptively until the relative 95% CI falls below
/// `target_rel_ci` or `max_iterations` is exhausted, whichever first.
/// Returns the result plus the statistics that stopped it.
///
/// This is the practical answer to the paper's observation that the
/// theoretical iteration bound is far too pessimistic: stop when the
/// observed spread says the estimate is tight. It is a thin wrapper over
/// the engine's native [`StopRule::RelativeError`] path — unlike the
/// pre-adaptive implementation it never restarts and re-runs completed
/// iterations, so every iteration of work contributes to the answer.
pub fn count_until_converged(
    g: &fascia_graph::Graph,
    t: &fascia_template::Template,
    base: &crate::engine::CountConfig,
    target_rel_ci: f64,
    max_iterations: usize,
) -> Result<(crate::engine::CountResult, EstimateStats), crate::engine::CountError> {
    assert!(target_rel_ci > 0.0, "target must be positive");
    let max_iters = max_iterations.max(1);
    // The engine's stopping test uses z = Φ⁻¹(0.975) ≈ 1.9599640 while the
    // reported `relative_ci95` uses the conventional 1.96; rescale epsilon
    // so "engine converged" is exactly "relative_ci95 <= target".
    let epsilon = target_rel_ci * normal_quantile(0.975) / 1.96;
    let cfg = crate::engine::CountConfig {
        stop: Some(StopRule::RelativeError {
            epsilon,
            delta: 0.05,
            min_iters: base.iterations.clamp(4, max_iters),
            max_iters,
        }),
        ..base.clone()
    };
    let result = crate::engine::count_template(g, t, &cfg)?;
    let stats = EstimateStats::from_series(&result.per_iteration);
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CountConfig;
    use crate::exact::count_exact;
    use crate::parallel::ParallelMode;
    use fascia_graph::gen::gnm;
    use fascia_template::Template;

    #[test]
    fn basic_moments() {
        let s = EstimateStats::from_series(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 5.0);
        assert!((s.variance - 20.0 / 3.0).abs() < 1e-12);
        assert!((s.std_error - (20.0 / 12.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = EstimateStats::from_series(&[7.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!(s.iterations_to_reach(0.01), None);
    }

    #[test]
    fn ci_contains_behaves() {
        let s = EstimateStats::from_series(&[9.0, 10.0, 11.0]);
        assert!(s.ci_contains(10.0));
        assert!(!s.ci_contains(20.0));
    }

    #[test]
    fn ci_covers_truth_on_real_workload() {
        let g = gnm(60, 180, 5);
        let t = Template::path(4);
        let exact = count_exact(&g, &t) as f64;
        let cfg = CountConfig {
            iterations: 400,
            parallel: ParallelMode::Serial,
            seed: 31,
            ..CountConfig::default()
        };
        let r = crate::engine::count_template(&g, &t, &cfg).unwrap();
        let s = EstimateStats::from_series(&r.per_iteration);
        // With 400 samples the normal CI should comfortably cover truth
        // (allow 3 sigma slack to keep the test deterministic-robust).
        assert!(
            (exact - s.mean).abs() <= 3.0 * s.std_error,
            "exact {exact} vs mean {} ± {}",
            s.mean,
            s.std_error
        );
    }

    #[test]
    fn adaptive_run_converges() {
        let g = gnm(60, 180, 8);
        let t = Template::path(3);
        let base = CountConfig {
            iterations: 4,
            parallel: ParallelMode::Serial,
            seed: 17,
            ..CountConfig::default()
        };
        let (result, stats) = count_until_converged(&g, &t, &base, 0.05, 5000).unwrap();
        assert!(
            stats.relative_ci95() <= 0.05,
            "rel CI {}",
            stats.relative_ci95()
        );
        let exact = count_exact(&g, &t) as f64;
        let rel = (result.estimate - exact).abs() / exact;
        assert!(rel < 0.08, "estimate {} vs exact {exact}", result.estimate);
        assert!(result.per_iteration.len() <= 5000);
    }

    #[test]
    fn adaptive_run_respects_cap() {
        let g = gnm(30, 60, 9);
        let t = Template::path(5);
        let base = CountConfig {
            iterations: 4,
            parallel: ParallelMode::Serial,
            seed: 3,
            ..CountConfig::default()
        };
        // Absurdly tight target: must stop at the cap.
        let (result, _) = count_until_converged(&g, &t, &base, 1e-9, 64).unwrap();
        assert!(result.per_iteration.len() <= 64);
    }

    #[test]
    #[should_panic]
    fn empty_series_rejected() {
        EstimateStats::from_series(&[]);
    }

    /// Welford's streaming moments agree with the two-pass batch
    /// computation on fixed inputs, including large-mean/small-spread
    /// series where a naive sum-of-squares loses precision.
    #[test]
    fn welford_matches_batch_on_fixed_inputs() {
        let series: [&[f64]; 4] = [
            &[2.0, 4.0, 6.0, 8.0],
            &[7.0],
            &[0.0, 0.0, 0.0],
            &[1e15, 1e15 + 2.0, 1e15 + 4.0, 1e15 + 1.0, 1e15 + 3.0],
        ];
        for s in series {
            let mut w = Welford::new();
            for &x in s {
                w.push(x);
            }
            let b = EstimateStats::from_series(s);
            assert_eq!(w.count(), b.n);
            assert!((w.mean() - b.mean).abs() <= 1e-9 * b.mean.abs().max(1.0));
            assert!(
                (w.variance() - b.variance).abs() <= 1e-9 * b.variance.max(1.0),
                "welford {} vs batch {} on {s:?}",
                w.variance(),
                b.variance
            );
            assert!((w.std_error() - b.std_error).abs() <= 1e-9 * b.std_error.max(1.0));
            assert!(
                (w.ci_half_width(1.96) - b.ci95_half_width).abs()
                    <= 1e-9 * b.ci95_half_width.max(1.0)
            );
        }
    }

    #[test]
    fn welford_stats_snapshot_matches_batch() {
        let s = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &s {
            w.push(x);
        }
        let snap = w.stats();
        let batch = EstimateStats::from_series(&s);
        assert_eq!(snap.n, batch.n);
        assert!((snap.mean - batch.mean).abs() < 1e-12);
        assert!((snap.variance - batch.variance).abs() < 1e-12);
    }

    #[test]
    fn empty_welford_is_inert() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
        assert_eq!(w.relative_ci(1.96), f64::INFINITY);
    }

    #[test]
    fn normal_quantile_hits_known_values() {
        // Reference values of Φ⁻¹ to >6 digits.
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959_964),
            (0.995, 2.575_829),
            (0.841_344_75, 1.0),
            (0.025, -1.959_964),
            (0.001, -3.090_232),
        ];
        for (p, z) in cases {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-5,
                "Φ⁻¹({p}) = {} want {z}",
                normal_quantile(p)
            );
        }
        // Antisymmetry.
        assert!((normal_quantile(0.3) + normal_quantile(0.7)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn normal_quantile_rejects_unit_boundary() {
        normal_quantile(1.0);
    }

    #[test]
    fn stop_rule_budget_and_validation() {
        assert_eq!(StopRule::FixedIterations(7).budget(), 7);
        assert_eq!(StopRule::FixedIterations(7).min_iterations(), 7);
        assert!(!StopRule::FixedIterations(7).is_adaptive());
        let r = StopRule::relative_error(0.05, 0.05);
        assert!(r.is_adaptive());
        assert_eq!(r.budget(), StopRule::DEFAULT_MAX_ITERS);
        assert_eq!(r.min_iterations(), StopRule::DEFAULT_MIN_ITERS);
        assert!(r.validate().is_ok());
        assert!((r.z() - 1.959_964).abs() < 1e-5);
        for bad in [
            StopRule::FixedIterations(0),
            StopRule::RelativeError {
                epsilon: -1.0,
                delta: 0.05,
                min_iters: 1,
                max_iters: 10,
            },
            StopRule::RelativeError {
                epsilon: 0.1,
                delta: 0.0,
                min_iters: 1,
                max_iters: 10,
            },
            StopRule::RelativeError {
                epsilon: 0.1,
                delta: 0.05,
                min_iters: 1,
                max_iters: 0,
            },
            StopRule::RelativeError {
                epsilon: 0.1,
                delta: 0.05,
                min_iters: 9,
                max_iters: 3,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn stop_rule_satisfaction_semantics() {
        let mut w = Welford::new();
        let fixed = StopRule::FixedIterations(3);
        let rel = StopRule::RelativeError {
            epsilon: 0.5,
            delta: 0.05,
            min_iters: 4,
            max_iters: 6,
        };
        // Identical samples: zero variance, converged as soon as allowed.
        for i in 0..3 {
            assert!(!fixed.satisfied(&w), "after {i} samples");
            assert!(!rel.satisfied(&w), "min_iters gates sample {i}");
            w.push(10.0);
        }
        assert!(fixed.satisfied(&w));
        assert!(!rel.satisfied(&w), "still below min_iters");
        w.push(10.0);
        assert!(rel.satisfied(&w), "tight CI at min_iters");
        // A zero-mean stream never converges before the budget.
        let mut z = Welford::new();
        for _ in 0..5 {
            z.push(0.0);
        }
        assert!(!rel.satisfied(&z));
        z.push(0.0);
        assert!(rel.satisfied(&z), "budget exhaustion still stops it");
    }
}
