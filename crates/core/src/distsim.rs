//! Simulated distributed-memory execution.
//!
//! The paper's future work — "consider partitioning the dynamic
//! programming table for execution on a distributed-memory platform" — is
//! what PARSE (ICPP 2010) and SAHAD (IPDPS 2012) did: partition the
//! vertices across ranks, let each rank own its vertices' table rows, and
//! exchange *ghost rows* (passive-child rows of remote neighbors) before
//! each subtemplate step.
//!
//! Real MPI is out of scope for an offline workstation build, so this
//! module simulates that execution faithfully enough to study it: ranks
//! compute their owned rows with the exact same per-vertex kernels as the
//! shared-memory engine (so the estimate is **bitwise identical** — the
//! tests assert it), while the simulator tallies the communication a real
//! cluster would pay: ghost rows fetched per step, bytes on the wire, and
//! the per-rank row-compute load balance.

use crate::coloring::{iteration_seed, random_coloring};
use crate::engine::{
    cut_rows_for, effective_colors, triangle_rows_for, CountConfig, CountError, DpContext, Stored,
};
use fascia_combin::colorful_probability;
use fascia_graph::Graph;
use fascia_table::{CountTable, LazyTable, Rows};
use fascia_template::automorphism::automorphisms;
use fascia_template::partition::NodeKind;
use fascia_template::{PartitionTree, Template};
use std::collections::HashSet;

/// How vertices are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Contiguous blocks of vertex ids (locality-friendly for meshes).
    Block,
    /// `v mod ranks` (balances skewed degree distributions).
    Hash,
}

/// Configuration of a simulated distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of simulated ranks (>= 1).
    pub ranks: usize,
    /// Vertex-to-rank assignment.
    pub scheme: PartitionScheme,
    /// The usual engine configuration (table kind is fixed to the lazy
    /// layout, which is what a distributed implementation shards).
    pub count: CountConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            ranks: 4,
            scheme: PartitionScheme::Block,
            count: CountConfig::default(),
        }
    }
}

/// Result of a simulated distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Final estimate — bitwise identical to the shared-memory engine's.
    pub estimate: f64,
    /// Per-iteration estimates.
    pub per_iteration: Vec<f64>,
    /// Ghost rows fetched across all steps and iterations.
    pub ghost_rows: u64,
    /// Simulated wire bytes for those fetches (active rows cost a full
    /// row, inactive ones a 1-byte flag).
    pub comm_bytes: u64,
    /// Per-subtemplate-step communication bytes (summed over iterations),
    /// in `unique_order` sequence.
    pub per_step_bytes: Vec<u64>,
    /// Max over ranks of owned active rows, summed over steps — the
    /// straggler bound on compute balance.
    pub max_rank_rows: u64,
    /// Total active rows over all ranks and steps.
    pub total_rows: u64,
}

impl DistResult {
    /// Load imbalance: max rank load over mean rank load (1.0 = perfect).
    pub fn imbalance(&self, ranks: usize) -> f64 {
        if self.total_rows == 0 {
            return 1.0;
        }
        self.max_rank_rows as f64 / (self.total_rows as f64 / ranks as f64)
    }
}

/// Owner rank of each vertex.
pub fn owners(n: usize, ranks: usize, scheme: PartitionScheme) -> Vec<u32> {
    match scheme {
        PartitionScheme::Block => {
            let per = n.div_ceil(ranks.max(1));
            (0..n).map(|v| (v / per) as u32).collect()
        }
        PartitionScheme::Hash => (0..n).map(|v| (v % ranks) as u32).collect(),
    }
}

/// Runs the color-coding count on a simulated cluster.
///
/// Unlabeled templates only (as the distributed follow-on systems).
pub fn count_distributed(
    g: &Graph,
    t: &Template,
    cfg: &DistConfig,
) -> Result<DistResult, CountError> {
    if t.labels().is_some() {
        return Err(CountError::LabelsRequired);
    }
    if cfg.ranks == 0 {
        return Err(CountError::NoIterations);
    }
    let k = effective_colors(t, &cfg.count)?;
    let pt = PartitionTree::build(t, cfg.count.strategy)?;
    let ctx = DpContext::new(t, &pt, k);
    let n = g.num_vertices();
    let owner = owners(n, cfg.ranks, cfg.scheme);
    // Owned vertex lists per rank.
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); cfg.ranks];
    for v in 0..n {
        owned[owner[v] as usize].push(v as u32);
    }

    let alpha = automorphisms(t) as f64;
    let p = colorful_probability(k, t.size());
    let scale = p * alpha;

    let mut per_iteration = Vec::with_capacity(cfg.count.iterations);
    let mut ghost_rows = 0u64;
    let mut comm_bytes = 0u64;
    let mut per_step_bytes = vec![0u64; pt.unique_order().len()];
    let mut rank_rows = vec![0u64; cfg.ranks];

    for iter in 0..cfg.count.iterations as u64 {
        let coloring = random_coloring(n, k, iteration_seed(cfg.count.seed, iter));
        // Broadcasting the coloring: n bytes injected by rank 0 (tree
        // broadcast; each rank receives the full color vector once).
        if cfg.ranks > 1 {
            comm_bytes += n as u64;
        }

        let mut stored: Vec<Option<Stored<LazyTable>>> = Vec::new();
        stored.resize_with(pt.num_canon_classes(), || None);
        let mut uses = pt.class_use_counts();

        for (step, &idx) in pt.unique_order().iter().enumerate() {
            let node = &pt.nodes()[idx as usize];
            let cid = node.canon_id as usize;
            match node.kind {
                NodeKind::Vertex => {
                    stored[cid] = Some(Stored::Single { label: None });
                }
                NodeKind::Triangle { partners } => {
                    // Triangles read the coloring plus two-hop adjacency;
                    // a real system replicates boundary adjacency, which we
                    // charge as one ghost "row" (flag-sized) per remote
                    // neighbor of each owned vertex.
                    let mut merged: Rows = Vec::new();
                    merged.resize_with(n, || None);
                    for (rank, verts) in owned.iter().enumerate() {
                        let rows = triangle_rows_for(
                            g,
                            None,
                            t,
                            node,
                            partners,
                            &ctx,
                            &coloring,
                            false,
                            Some(verts),
                            None,
                            None,
                        );
                        let mut fetched: HashSet<u32> = HashSet::new();
                        for &v in verts {
                            for &u in g.neighbors(v as usize) {
                                if owner[u as usize] as usize != rank {
                                    fetched.insert(u);
                                }
                            }
                        }
                        ghost_rows += fetched.len() as u64;
                        comm_bytes += fetched.len() as u64;
                        per_step_bytes[step] += fetched.len() as u64;
                        merge_rows(&mut merged, rows, verts);
                        rank_rows[rank] += verts
                            .iter()
                            .filter(|&&v| merged[v as usize].is_some())
                            .count() as u64;
                    }
                    stored[cid] = Some(Stored::Table(LazyTable::from_rows(n, ctx.nc[3], merged)));
                }
                NodeKind::Cut { active, passive } => {
                    let a_node = &pt.nodes()[active as usize];
                    let p_node = &pt.nodes()[passive as usize];
                    let p_cid = p_node.canon_id as usize;
                    let row_bytes = (ctx.nc[p_node.size as usize] * 8) as u64;
                    let mut merged: Rows = Vec::new();
                    merged.resize_with(n, || None);
                    for (rank, verts) in owned.iter().enumerate() {
                        // Ghost exchange: passive rows of remote neighbors.
                        if matches!(stored[p_cid], Some(Stored::Table(_))) {
                            let Some(Stored::Table(ptab)) = &stored[p_cid] else {
                                unreachable!()
                            };
                            let mut fetched: HashSet<u32> = HashSet::new();
                            for &v in verts {
                                for &u in g.neighbors(v as usize) {
                                    if owner[u as usize] as usize != rank {
                                        fetched.insert(u);
                                    }
                                }
                            }
                            ghost_rows += fetched.len() as u64;
                            for &u in &fetched {
                                let bytes = if ptab.vertex_active(u as usize) {
                                    row_bytes
                                } else {
                                    1
                                };
                                comm_bytes += bytes;
                                per_step_bytes[step] += bytes;
                            }
                        }
                        let rows = {
                            let act = stored[a_node.canon_id as usize]
                                .as_ref()
                                .expect("active computed");
                            let pas = stored[p_cid].as_ref().expect("passive computed");
                            cut_rows_for(
                                g,
                                None,
                                node,
                                a_node,
                                p_node,
                                act,
                                pas,
                                &ctx,
                                &coloring,
                                false,
                                Some(verts),
                                None,
                                None,
                            )
                        };
                        merge_rows(&mut merged, rows, verts);
                        rank_rows[rank] += verts
                            .iter()
                            .filter(|&&v| merged[v as usize].is_some())
                            .count() as u64;
                    }
                    let table = LazyTable::from_rows(n, ctx.nc[node.size as usize], merged);
                    stored[cid] = Some(Stored::Table(table));
                    for child_cid in [a_node.canon_id as usize, p_cid] {
                        uses[child_cid] -= 1;
                        if uses[child_cid] == 0 && child_cid != cid {
                            stored[child_cid] = None;
                        }
                    }
                }
            }
        }

        // Final reduction: each rank contributes its owned partial sum
        // (8 bytes per rank).
        comm_bytes += 8 * cfg.ranks as u64;
        let total = match stored[pt.root().canon_id as usize]
            .as_ref()
            .expect("root computed")
        {
            Stored::Single { .. } => n as f64,
            Stored::Table(tb) => tb.total(),
        };
        per_iteration.push(total / scale);
    }

    let estimate = per_iteration.iter().sum::<f64>() / per_iteration.len().max(1) as f64;
    Ok(DistResult {
        estimate,
        per_iteration,
        ghost_rows,
        comm_bytes,
        per_step_bytes,
        max_rank_rows: rank_rows.iter().copied().max().unwrap_or(0),
        total_rows: rank_rows.iter().sum(),
    })
}

fn merge_rows(into: &mut Rows, from: Rows, verts: &[u32]) {
    let mut from = from;
    for &v in verts {
        into[v as usize] = from[v as usize].take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::count_template;
    use crate::parallel::ParallelMode;
    use fascia_graph::gen::{gnm, road_grid};
    use fascia_template::NamedTemplate;

    fn base(iters: usize) -> CountConfig {
        CountConfig {
            iterations: iters,
            parallel: ParallelMode::Serial,
            seed: 77,
            ..CountConfig::default()
        }
    }

    #[test]
    fn distributed_matches_shared_memory_bitwise() {
        let g = gnm(120, 400, 9);
        for t in [
            Template::path(4),
            NamedTemplate::U5_2.template(),
            Template::triangle(),
        ] {
            let shared = count_template(&g, &t, &base(4)).unwrap();
            for ranks in [1usize, 3, 8] {
                for scheme in [PartitionScheme::Block, PartitionScheme::Hash] {
                    let cfg = DistConfig {
                        ranks,
                        scheme,
                        count: base(4),
                    };
                    let dist = count_distributed(&g, &t, &cfg).unwrap();
                    assert_eq!(
                        dist.per_iteration, shared.per_iteration,
                        "{t:?} ranks={ranks} {scheme:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_rank_has_no_ghost_traffic() {
        let g = gnm(60, 200, 3);
        let cfg = DistConfig {
            ranks: 1,
            scheme: PartitionScheme::Block,
            count: base(2),
        };
        let r = count_distributed(&g, &Template::path(5), &cfg).unwrap();
        assert_eq!(r.ghost_rows, 0);
    }

    #[test]
    fn more_ranks_means_more_communication() {
        let g = gnm(200, 800, 5);
        let comm = |ranks| {
            let cfg = DistConfig {
                ranks,
                scheme: PartitionScheme::Hash,
                count: base(2),
            };
            count_distributed(&g, &Template::path(5), &cfg)
                .unwrap()
                .comm_bytes
        };
        let c2 = comm(2);
        let c8 = comm(8);
        assert!(c8 > c2, "8 ranks {c8} bytes vs 2 ranks {c2} bytes");
    }

    #[test]
    fn block_partition_beats_hash_on_meshes() {
        // On a road grid, block partitioning keeps neighbors co-located;
        // hash partitioning scatters them — a classic distributed-graph
        // result the simulator should reproduce.
        let g = road_grid(20, 20, 500, 4);
        let run = |scheme| {
            let cfg = DistConfig {
                ranks: 4,
                scheme,
                count: base(2),
            };
            count_distributed(&g, &Template::path(5), &cfg)
                .unwrap()
                .ghost_rows
        };
        let block = run(PartitionScheme::Block);
        let hash = run(PartitionScheme::Hash);
        assert!(
            block < hash,
            "block {block} ghost rows should beat hash {hash} on a mesh"
        );
    }

    #[test]
    fn load_metrics_are_consistent() {
        let g = gnm(150, 500, 13);
        let cfg = DistConfig {
            ranks: 5,
            scheme: PartitionScheme::Block,
            count: base(3),
        };
        let r = count_distributed(&g, &Template::path(4), &cfg).unwrap();
        assert!(r.max_rank_rows <= r.total_rows);
        assert!(r.max_rank_rows * 5 >= r.total_rows, "max rank below mean");
        let imb = r.imbalance(5);
        assert!((1.0..=5.0).contains(&imb));
        assert_eq!(
            r.per_step_bytes.iter().sum::<u64>()
                + 8 * 5 * r.per_iteration.len() as u64
                + (g.num_vertices() as u64) * r.per_iteration.len() as u64,
            r.comm_bytes,
            "per-step bytes + reductions + coloring broadcasts add up"
        );
    }

    #[test]
    fn zero_ranks_rejected() {
        let g = gnm(10, 20, 1);
        let cfg = DistConfig {
            ranks: 0,
            scheme: PartitionScheme::Block,
            count: base(1),
        };
        assert!(count_distributed(&g, &Template::path(3), &cfg).is_err());
    }
}
