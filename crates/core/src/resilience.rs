//! Resilient execution: checkpoint/resume, cooperative cancellation, and
//! the supporting fault-injection hooks (DESIGN.md §11).
//!
//! Long color-coding runs are a sequence of independent iterations, which
//! makes them naturally restartable: the complete run state between waves
//! is the per-iteration estimate series (plus the seed that deterministically
//! regenerates every future coloring). [`Checkpoint`] serializes exactly
//! that to a versioned `fascia-ckpt/1` JSON file after each wave, and
//! resuming replays the series into a fresh [`Welford`] stream — push
//! order is identical to the uninterrupted run, so a resumed
//! `FixedIterations` run reproduces the uninterrupted result *bit for
//! bit* (Rust's `f64` `Display` is shortest-roundtrip, so the JSON text
//! recovers every bit).
//!
//! [`CancelToken`] provides cooperative cancellation: an atomic flag plus
//! an optional deadline, checked at wave barriers and every
//! [`POLL_INTERVAL`] vertices inside the per-vertex DP loops. A cancelled
//! wave is discarded whole — the surviving series is always a contiguous
//! prefix of iterations `0..n`, which is what keeps resume exact.

use crate::stats::{StopRule, Welford};
use fascia_obs::json::{write_f64, ObjectWriter};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema tag of the checkpoint file format.
pub const CHECKPOINT_SCHEMA: &str = "fascia-ckpt/1";

/// How many vertices the inner per-vertex loops process between
/// cancellation polls. A power of two so the check compiles to a mask.
pub const POLL_INTERVAL: usize = 1024;

/// Why a counting run stopped (carried on `CountResult::stop_cause`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The stop rule's budget was exhausted normally.
    Completed,
    /// An adaptive rule declared convergence before its budget.
    Converged,
    /// A [`CancelToken`] was cancelled (e.g. Ctrl-C).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl StopCause {
    /// Whether the run ended early with a partial (but valid) estimate.
    pub fn is_partial(&self) -> bool {
        matches!(self, StopCause::Cancelled | StopCause::DeadlineExceeded)
    }

    /// Stable lower-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StopCause::Completed => "completed",
            StopCause::Converged => "converged",
            StopCause::Cancelled => "cancelled",
            StopCause::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    external: Option<&'static AtomicBool>,
    deadline: Option<Instant>,
}

/// Cooperative cancellation handle shared between the caller and a run.
///
/// Cloning shares the same underlying flag. The engine polls
/// [`CancelToken::is_cancelled`] at wave barriers and (cheaply, every
/// [`POLL_INTERVAL`] vertices) inside the per-vertex DP loops, so
/// cancellation latency is bounded even mid-iteration on large graphs.
///
/// ```
/// use fascia_core::resilience::CancelToken;
///
/// let token = CancelToken::new();
/// let engine_side = token.clone();
/// assert!(!engine_side.is_cancelled());
/// token.cancel();
/// assert!(engine_side.is_cancelled());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                external: None,
                deadline: None,
            }),
        }
    }

    /// Adds a deadline `after` from now. Builder-style; call before the
    /// token is cloned/shared.
    pub fn deadline(self, after: Duration) -> Self {
        self.rebuild(Some(Instant::now() + after), self.inner.external)
    }

    /// Watches an external flag (e.g. one set by a process signal
    /// handler) in addition to the token's own. Builder-style; call
    /// before the token is cloned/shared.
    pub fn external_flag(self, flag: &'static AtomicBool) -> Self {
        self.rebuild(self.inner.deadline, Some(flag))
    }

    fn rebuild(&self, deadline: Option<Instant>, external: Option<&'static AtomicBool>) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(self.inner.flag.load(Ordering::Relaxed)),
                external,
                deadline,
            }),
        }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the run should stop: explicit cancel, external flag, or
    /// deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(f) = self.inner.external {
            if f.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The stop cause if cancelled (`None` while still running). An
    /// explicit cancel wins over a deadline that also passed.
    pub fn cause(&self) -> Option<StopCause> {
        let explicit = self.inner.flag.load(Ordering::Relaxed)
            || self
                .inner
                .external
                .is_some_and(|f| f.load(Ordering::Relaxed));
        if explicit {
            return Some(StopCause::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(StopCause::DeadlineExceeded),
            _ => None,
        }
    }
}

/// Where (and how often) the engine writes checkpoints during a run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file path; written atomically (temp file + rename)
    /// after qualifying waves, and once more when the run ends.
    pub path: PathBuf,
    /// Write after every `every_waves`-th wave barrier (1 = every wave).
    /// Raising this trades crash-recovery granularity for fewer writes on
    /// runs with very cheap iterations.
    pub every_waves: usize,
    /// Fsync the file and its containing directory on every flush
    /// ([`atomic_write_durable`]), so a crash *immediately after* a
    /// checkpoint cannot lose it on real filesystems. Off by default —
    /// interactive CLI runs prefer cheap waves — and on for service jobs,
    /// whose crash-recovery contract depends on the last flush surviving.
    pub durable: bool,
}

impl CheckpointConfig {
    /// Checkpoints to `path` after every wave.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every_waves: 1,
            durable: false,
        }
    }

    /// Builder: fsync file + directory on every flush (service paths).
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }
}

/// Deterministic fault hooks for tests: crash or cancel a run at an exact
/// iteration, with no timing dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultInjection {
    /// Panic on the *first* attempt of this iteration index (the retry
    /// runs clean), exercising the engine's panic isolation.
    pub panic_on_iteration: Option<usize>,
    /// Cancel the run's token right before this iteration executes,
    /// exercising mid-run cancellation and checkpoint flushing.
    pub cancel_on_iteration: Option<usize>,
    /// Sleep this long at every subtemplate DP step, slowing the engine
    /// without changing any counting result — a synthetic regression for
    /// validating the `fascia-perf` compare gate end to end.
    pub sleep_in_dp: Option<std::time::Duration>,
}

/// Errors loading or saving a [`Checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file is not well-formed JSON; `offset` is the byte position.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected.
        msg: &'static str,
    },
    /// The file is JSON but not a `fascia-ckpt/1` document (payload is
    /// the schema string found, empty when absent).
    Schema(String),
    /// Well-formed `fascia-ckpt/1` JSON whose content is inconsistent
    /// (missing field, wrong type, or failed integrity check).
    Invalid(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Parse { offset, msg } => {
                write!(f, "checkpoint parse error at byte {offset}: {msg}")
            }
            CheckpointError::Schema(s) if s.is_empty() => {
                write!(f, "not a {CHECKPOINT_SCHEMA} file (no schema field)")
            }
            CheckpointError::Schema(s) => {
                write!(
                    f,
                    "unsupported checkpoint schema {s:?} (want {CHECKPOINT_SCHEMA})"
                )
            }
            CheckpointError::Invalid(why) => write!(f, "invalid checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A run's complete restartable state between waves.
///
/// Everything a resumed run needs is here: the seed (every iteration `i`
/// derives its coloring from `iteration_seed(seed, i)`, so future
/// colorings regenerate deterministically), the configuration fingerprint
/// that must match on resume (colors, template size, graph shape, stop
/// rule), and the scaled per-iteration estimate series completed so far.
///
/// ```
/// use fascia_core::resilience::Checkpoint;
/// use fascia_core::stats::StopRule;
///
/// let ck = Checkpoint {
///     seed: 7,
///     colors: 5,
///     template_size: 5,
///     graph_vertices: 100,
///     graph_edges: 250,
///     rule: StopRule::FixedIterations(50),
///     per_iteration: vec![1.5, 2.25, 0.0],
///     peak_table_bytes: 4096,
/// };
/// let back = Checkpoint::from_json(&ck.to_json()).unwrap();
/// assert_eq!(back, ck); // f64 Display round-trips bitwise
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Base RNG seed of the run being checkpointed.
    pub seed: u64,
    /// Number of colors `k`.
    pub colors: usize,
    /// Template vertex count.
    pub template_size: usize,
    /// Graph vertex count (resume-mismatch guard).
    pub graph_vertices: usize,
    /// Graph edge count (resume-mismatch guard).
    pub graph_edges: usize,
    /// The run's *target* stop rule (not the completed count), so a run
    /// killed at iteration `j < n` resumes toward the original `n`.
    pub rule: StopRule,
    /// Scaled per-iteration estimates completed so far (iterations
    /// `0..len`, a contiguous prefix by construction).
    pub per_iteration: Vec<f64>,
    /// Peak DP-table bytes observed so far (carried through resume so the
    /// final report covers the whole logical run).
    pub peak_table_bytes: usize,
}

impl Checkpoint {
    /// Iterations completed (the resume cursor).
    pub fn iterations_done(&self) -> usize {
        self.per_iteration.len()
    }

    /// The streaming [`Welford`] state implied by the series: replaying
    /// pushes in order is bitwise-identical to the uninterrupted stream,
    /// so this both *is* the serialized estimator state and serves as the
    /// file's integrity check.
    pub fn welford(&self) -> Welford {
        let mut w = Welford::new();
        for &x in &self.per_iteration {
            w.push(x);
        }
        w
    }

    /// Serializes to `fascia-ckpt/1` JSON.
    pub fn to_json(&self) -> String {
        let mut series = String::from("[");
        for (i, &x) in self.per_iteration.iter().enumerate() {
            if i > 0 {
                series.push(',');
            }
            write_f64(&mut series, x);
        }
        series.push(']');
        let rule = match self.rule {
            StopRule::FixedIterations(n) => {
                let mut o = ObjectWriter::new();
                o.field_str("kind", "fixed").field_u64("iters", n as u64);
                o.finish()
            }
            StopRule::RelativeError {
                epsilon,
                delta,
                min_iters,
                max_iters,
            } => {
                let mut o = ObjectWriter::new();
                o.field_str("kind", "relative_error")
                    .field_f64("epsilon", epsilon)
                    .field_f64("delta", delta)
                    .field_u64("min_iters", min_iters as u64)
                    .field_u64("max_iters", max_iters as u64);
                o.finish()
            }
        };
        let w = self.welford();
        let mut welford = String::new();
        let _ = write!(welford, "{{\"n\":{}", w.count());
        welford.push_str(",\"mean\":");
        write_f64(&mut welford, w.mean());
        welford.push_str(",\"m2\":");
        write_f64(&mut welford, w.m2());
        welford.push('}');

        let mut o = ObjectWriter::new();
        o.field_str("schema", CHECKPOINT_SCHEMA)
            .field_u64("seed", self.seed)
            .field_u64("colors", self.colors as u64)
            .field_u64("template_size", self.template_size as u64)
            .field_u64("graph_vertices", self.graph_vertices as u64)
            .field_u64("graph_edges", self.graph_edges as u64)
            .field_raw("rule", &rule)
            .field_u64("iterations_done", self.per_iteration.len() as u64)
            .field_raw("per_iteration", &series)
            .field_u64("peak_table_bytes", self.peak_table_bytes as u64)
            .field_raw("welford", &welford);
        o.finish()
    }

    /// Parses and validates `fascia-ckpt/1` JSON. Rejects malformed JSON,
    /// wrong schemas, missing/mistyped fields, non-finite estimates, and
    /// internally inconsistent state (cursor or Welford snapshot
    /// disagreeing with the series, series longer than the rule's budget)
    /// — always with a typed error, never a panic.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let v = Json::parse(text)?;
        let obj = v.as_obj().ok_or(CheckpointError::Invalid(
            "top-level value must be an object",
        ))?;
        let schema = match Json::get(obj, "schema").and_then(Json::as_str) {
            Some(s) => s,
            None => return Err(CheckpointError::Schema(String::new())),
        };
        if schema != CHECKPOINT_SCHEMA {
            return Err(CheckpointError::Schema(schema.to_string()));
        }
        let get_u64 = |key: &'static str| -> Result<u64, CheckpointError> {
            Json::get(obj, key)
                .and_then(Json::as_u64)
                .ok_or(CheckpointError::Invalid(key))
        };
        let rule_obj = Json::get(obj, "rule")
            .and_then(Json::as_obj)
            .ok_or(CheckpointError::Invalid("rule"))?;
        let rule_field = |key: &'static str| -> Result<&Json, CheckpointError> {
            Json::get(rule_obj, key).ok_or(CheckpointError::Invalid("rule parameters"))
        };
        let rule = match Json::get(rule_obj, "kind").and_then(Json::as_str) {
            Some("fixed") => StopRule::FixedIterations(
                rule_field("iters")?
                    .as_u64()
                    .ok_or(CheckpointError::Invalid("rule.iters"))? as usize,
            ),
            Some("relative_error") => StopRule::RelativeError {
                epsilon: rule_field("epsilon")?
                    .as_f64()
                    .ok_or(CheckpointError::Invalid("rule.epsilon"))?,
                delta: rule_field("delta")?
                    .as_f64()
                    .ok_or(CheckpointError::Invalid("rule.delta"))?,
                min_iters: rule_field("min_iters")?
                    .as_u64()
                    .ok_or(CheckpointError::Invalid("rule.min_iters"))?
                    as usize,
                max_iters: rule_field("max_iters")?
                    .as_u64()
                    .ok_or(CheckpointError::Invalid("rule.max_iters"))?
                    as usize,
            },
            _ => return Err(CheckpointError::Invalid("rule.kind")),
        };
        rule.validate().map_err(CheckpointError::Invalid)?;
        let series_json = Json::get(obj, "per_iteration")
            .and_then(Json::as_arr)
            .ok_or(CheckpointError::Invalid("per_iteration"))?;
        let mut per_iteration = Vec::with_capacity(series_json.len());
        for x in series_json {
            let x = x
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or(CheckpointError::Invalid(
                    "per_iteration entries must be finite numbers",
                ))?;
            per_iteration.push(x);
        }
        if per_iteration.len() > rule.budget() {
            return Err(CheckpointError::Invalid(
                "series exceeds the stop rule's iteration budget",
            ));
        }
        let done = get_u64("iterations_done")? as usize;
        if done != per_iteration.len() {
            return Err(CheckpointError::Invalid(
                "iterations_done disagrees with the series length",
            ));
        }
        let ck = Checkpoint {
            seed: get_u64("seed")?,
            colors: get_u64("colors")? as usize,
            template_size: get_u64("template_size")? as usize,
            graph_vertices: get_u64("graph_vertices")? as usize,
            graph_edges: get_u64("graph_edges")? as usize,
            rule,
            per_iteration,
            peak_table_bytes: get_u64("peak_table_bytes")? as usize,
        };
        // Integrity: the stored Welford snapshot must equal the replayed
        // one bit for bit (both derive from the same push sequence).
        let welford_obj = Json::get(obj, "welford")
            .and_then(Json::as_obj)
            .ok_or(CheckpointError::Invalid("welford"))?;
        let w = ck.welford();
        let n = Json::get(welford_obj, "n").and_then(Json::as_u64);
        let mean = Json::get(welford_obj, "mean").and_then(Json::as_f64);
        let m2 = Json::get(welford_obj, "m2").and_then(Json::as_f64);
        if n != Some(w.count() as u64) || mean != Some(w.mean()) || m2 != Some(w.m2()) {
            return Err(CheckpointError::Invalid(
                "welford snapshot disagrees with the series",
            ));
        }
        Ok(ck)
    }

    /// Writes atomically: a sibling temp file is renamed over `path`, so
    /// a crash mid-write never leaves a truncated checkpoint behind.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_opts(path, false)
    }

    /// [`Checkpoint::save`] with an explicit durability choice: `durable`
    /// routes through [`atomic_write_durable`] (file + directory fsync),
    /// the write discipline of the service path.
    pub fn save_opts(&self, path: &Path, durable: bool) -> Result<(), CheckpointError> {
        if path.file_name().is_none() {
            return Err(CheckpointError::Invalid(
                "checkpoint path needs a file name",
            ));
        }
        if durable {
            atomic_write_durable(path, &self.to_json())?;
        } else {
            atomic_write(path, &self.to_json())?;
        }
        Ok(())
    }

    /// Reads and validates a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

/// Writes `contents` to `path` atomically: a sibling `.tmp` file is
/// written first and renamed over the destination, so readers never see a
/// torn or truncated document. Shared by checkpoint saves, trace export,
/// and the heartbeat writer. On any failure the temp file is removed —
/// a failed save must not litter the run directory with stale `.tmp`
/// siblings that a later `fascia report` scan would trip over.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] hardened for crash durability: the temp file is
/// fsynced before the rename, and the containing directory is fsynced
/// after it. Plain `rename` only orders the *names*; on real filesystems
/// a power loss right after [`atomic_write`] returns can roll the
/// directory back to the old entry (or, with the data unflushed, expose a
/// new name pointing at zero-length data). Service-path writers —
/// checkpoints a restart must recover from, job result documents —
/// cannot afford either, so they pay the two extra fsyncs.
pub fn atomic_write_durable(path: &Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        fsync_parent_dir(path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs the directory containing `path`, persisting the rename that
/// just landed in it. On platforms where directories cannot be opened
/// for syncing this is a no-op (the rename's atomicity still holds; only
/// the durability-across-power-loss guarantee is platform-limited).
#[cfg(unix)]
fn fsync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
fn fsync_parent_dir(_path: &Path) -> std::io::Result<()> {
    Ok(())
}

/// The sibling temp path `atomic_write` stages through (`<path>.tmp`).
/// Exposed so cleanup paths (clean exit, interrupt) can remove a stale
/// temp file left by a process that died mid-write.
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut tmp_name = path
        .file_name()
        .unwrap_or_else(|| std::ffi::OsStr::new("out"))
        .to_os_string();
    tmp_name.push(".tmp");
    path.with_file_name(tmp_name)
}

/// A parsed JSON value — the read half of `fascia-obs`'s write-only JSON
/// layer. Originally private to checkpoint loading; public so the CLI and
/// CI gates can validate the documents this crate emits (checkpoints,
/// traces, heartbeats) with the same depth-capped parser that guards
/// resume. Integer-valued tokens keep full `u64` precision (seeds and
/// cursors must not round-trip through `f64`).
#[derive(Debug)]
pub enum Json {
    Null,
    // The checkpoint schema has no boolean fields, but the parser accepts
    // the full JSON grammar so adversarial inputs fail for the right
    // reason (wrong type, not parse error).
    #[allow(dead_code)]
    Bool(bool),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

const MAX_JSON_DEPTH: usize = 32;

impl Json {
    /// Parses a complete JSON document (depth-capped, full `u64`
    /// precision for integer tokens).
    pub fn parse(text: &str) -> Result<Json, CheckpointError> {
        let mut p = JsonParser {
            b: text.as_bytes(),
            pos: 0,
        };
        let v = p.value(MAX_JSON_DEPTH)?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing data after the JSON value"));
        }
        Ok(v)
    }

    /// Looks up `key` in a parsed object's field list.
    pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The object's fields, if this value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The array's elements, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string value, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact integer value, if this value is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// The numeric value (integers widen), if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(n) => Some(n as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &'static str) -> CheckpointError {
        CheckpointError::Parse {
            offset: self.pos,
            msg,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), CheckpointError> {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, CheckpointError> {
        if depth == 0 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.b.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8], v: Json) -> Result<Json, CheckpointError> {
        if self.b[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, CheckpointError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            let val = self.value(depth - 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, CheckpointError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth - 1)?);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .b
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, CheckpointError> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(&c) = self.b.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if integral && !token.starts_with('-') {
            if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        match token.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(self.err("malformed number")),
        }
    }
}

/// Byte width of a UTF-8 sequence from its first byte (caller validates
/// the full sequence afterwards).
fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 0xDEAD_BEEF_0123_4567,
            colors: 5,
            template_size: 5,
            graph_vertices: 1000,
            graph_edges: 2500,
            rule: StopRule::FixedIterations(100),
            per_iteration: vec![1.0 / 3.0, 1e17, 0.0, 7.25, f64::MIN_POSITIVE],
            peak_table_bytes: 123_456,
        }
    }

    #[test]
    fn json_roundtrip_is_bitwise() {
        let ck = sample();
        let back = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back, ck);
        for (a, b) in ck.per_iteration.iter().zip(&back.per_iteration) {
            assert_eq!(a.to_bits(), b.to_bits(), "f64 bits must survive JSON");
        }
    }

    #[test]
    fn adaptive_rule_roundtrips() {
        let mut ck = sample();
        ck.rule = StopRule::RelativeError {
            epsilon: 0.05,
            delta: 0.01,
            min_iters: 8,
            max_iters: 5000,
        };
        assert_eq!(Checkpoint::from_json(&ck.to_json()).unwrap(), ck);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("fascia-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // The staging file was renamed over the destination, not left behind.
        assert!(!tmp_sibling(&path).exists(), "no .tmp after a clean save");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_write_lands_and_cleans_up_like_the_plain_one() {
        let dir = std::env::temp_dir().join(format!("fascia-awd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.json");
        atomic_write_durable(&path, "{\"ok\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":1}");
        assert!(!tmp_sibling(&path).exists());
        // Failure path (rename blocked by a directory) removes the temp.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(&blocked).unwrap();
        assert!(atomic_write_durable(&blocked, "{}").is_err());
        assert!(!tmp_sibling(&blocked).exists());
        // Durable checkpoint saves round-trip identically to plain ones.
        let ck = sample();
        let dp = dir.join("durable.ckpt");
        ck.save_opts(&dp, true).unwrap();
        assert_eq!(Checkpoint::load(&dp).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_sibling_appends_to_the_file_name() {
        let p = Path::new("/runs/out/hb.json");
        assert_eq!(tmp_sibling(p), Path::new("/runs/out/hb.json.tmp"));
    }

    #[test]
    fn failed_atomic_write_removes_its_temp_file() {
        let dir = std::env::temp_dir().join(format!("fascia-aw-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The destination is a directory, so the write succeeds but the
        // rename over it fails — exactly the window that used to leak a
        // stale `.tmp` sibling into the run directory.
        let dest = dir.join("blocked");
        std::fs::create_dir_all(&dest).unwrap();
        assert!(atomic_write(&dest, "{}").is_err());
        assert!(
            !tmp_sibling(&dest).exists(),
            "a failed save must clean up its staging file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_malformed_inputs_with_typed_errors() {
        let deep = "[".repeat(100_000);
        let cases: &[&str] = &[
            "",
            "not json",
            "{",
            "[1,2,3]",
            "{\"schema\":\"fascia-ckpt/1\"}",
            "{\"schema\":\"fascia-ckpt/2\"}",
            "{\"schema\":17}",
            "null",
            "{\"schema\":\"fascia-ckpt/1\",\"seed\":-3}",
            &deep,
        ];
        for c in cases {
            assert!(
                Checkpoint::from_json(c).is_err(),
                "should reject {:?}…",
                &c[..c.len().min(40)]
            );
        }
    }

    #[test]
    fn rejects_inconsistent_state() {
        // Well-scaled series: a tampered entry must actually move the
        // Welford moments (the `sample()` series contains 1e17, which
        // would absorb a 0.25 change below f64 resolution).
        let ck = Checkpoint {
            per_iteration: vec![1.5, 7.25, 3.125],
            ..sample()
        };
        // Tamper with one estimate: the Welford snapshot no longer matches.
        let json = ck.to_json().replace("7.25", "7.5");
        assert!(matches!(
            Checkpoint::from_json(&json),
            Err(CheckpointError::Invalid(_))
        ));
        // Cursor disagreeing with the series.
        let json = sample()
            .to_json()
            .replace("\"iterations_done\":5", "\"iterations_done\":4");
        assert!(Checkpoint::from_json(&json).is_err());
        // Series longer than the rule's budget.
        let mut over = sample();
        over.rule = StopRule::FixedIterations(2);
        assert!(Checkpoint::from_json(&over.to_json()).is_err());
    }

    #[test]
    fn non_finite_estimates_rejected() {
        let mut ck = sample();
        ck.per_iteration = vec![f64::NAN];
        // write_f64 renders NaN as null; the loader must refuse it.
        assert!(Checkpoint::from_json(&ck.to_json()).is_err());
    }

    #[test]
    fn token_cancel_and_clone_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        assert_eq!(t.cause(), None);
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(u.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn token_deadline_expires() {
        let t = CancelToken::new().deadline(Duration::from_secs(0));
        assert!(t.is_cancelled());
        assert_eq!(t.cause(), Some(StopCause::DeadlineExceeded));
        let far = CancelToken::new().deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        // Explicit cancel wins over a pending deadline.
        far.cancel();
        assert_eq!(far.cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn token_external_flag() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let t = CancelToken::new().external_flag(&FLAG);
        assert!(!t.is_cancelled());
        FLAG.store(true, Ordering::Relaxed);
        assert!(t.is_cancelled());
        assert_eq!(t.cause(), Some(StopCause::Cancelled));
        FLAG.store(false, Ordering::Relaxed);
    }

    #[test]
    fn stop_cause_names() {
        assert!(!StopCause::Completed.is_partial());
        assert!(!StopCause::Converged.is_partial());
        assert!(StopCause::Cancelled.is_partial());
        assert!(StopCause::DeadlineExceeded.is_partial());
        assert_eq!(StopCause::DeadlineExceeded.name(), "deadline-exceeded");
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = Json::parse(r#"{"k":"a\"b\\c\ndAé"}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(Json::get(obj, "k").unwrap().as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn parser_keeps_u64_precision() {
        let v = Json::parse(&format!("{{\"s\":{}}}", u64::MAX)).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(Json::get(obj, "s").unwrap().as_u64(), Some(u64::MAX));
    }
}
