//! Graphlet degree distributions and Pržulj's agreement metric (§V-F).
//!
//! The graphlet degree of a graph vertex `v` for an orbit `o` of a
//! template is the number of occurrences in which `v` plays role `o`.
//! FASCIA estimates it from the rooted DP table: the row sum at `v` of the
//! full-template table, divided by `P · α_rooted`.
//!
//! The distribution `d_o(j)` counts vertices with graphlet degree `j`;
//! agreement between two distributions follows N. Pržulj's GDD-agreement:
//! scale `S(j) = d(j) / j`, normalize to `N(j) = S(j) / Σ S`, and score
//! `A = 1 - (1/√2) · ||N_G - N_H||_2`.

use crate::engine::{rooted_counts, CountConfig, CountError};
use fascia_graph::Graph;
use fascia_template::Template;
use std::collections::BTreeMap;

/// A graphlet degree distribution: `degree -> number of vertices`.
/// Degree 0 is excluded, following Pržulj.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GddHistogram {
    counts: BTreeMap<u64, u64>,
}

impl GddHistogram {
    /// Builds the histogram from per-vertex graphlet degrees (estimates are
    /// rounded to the nearest integer; zero-degree vertices are dropped).
    pub fn from_degrees(degrees: &[f64]) -> Self {
        let mut counts = BTreeMap::new();
        for &d in degrees {
            let j = d.round().max(0.0) as u64;
            if j > 0 {
                *counts.entry(j).or_insert(0) += 1;
            }
        }
        Self { counts }
    }

    /// Iterates `(degree, vertex_count)` pairs in ascending degree order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&j, &c)| (j, c))
    }

    /// Number of distinct degrees present.
    pub fn support(&self) -> usize {
        self.counts.len()
    }

    /// Total vertices with non-zero graphlet degree.
    pub fn total_vertices(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Pržulj-normalized distribution `N(j)`.
    fn normalized(&self) -> BTreeMap<u64, f64> {
        let scaled: BTreeMap<u64, f64> = self
            .counts
            .iter()
            .map(|(&j, &c)| (j, c as f64 / j as f64))
            .collect();
        let total: f64 = scaled.values().sum();
        if total == 0.0 {
            return BTreeMap::new();
        }
        scaled.into_iter().map(|(j, s)| (j, s / total)).collect()
    }
}

/// GDD agreement between two distributions, in `[0, 1]`; identical
/// distributions score exactly 1.
pub fn gdd_agreement(a: &GddHistogram, b: &GddHistogram) -> f64 {
    let na = a.normalized();
    let nb = b.normalized();
    let mut sq = 0.0f64;
    let keys: std::collections::BTreeSet<u64> = na.keys().chain(nb.keys()).copied().collect();
    for j in keys {
        let x = na.get(&j).copied().unwrap_or(0.0);
        let y = nb.get(&j).copied().unwrap_or(0.0);
        sq += (x - y) * (x - y);
    }
    1.0 - (sq.sqrt() / std::f64::consts::SQRT_2)
}

/// Estimates the graphlet degree distribution of `g` for template `t` at
/// orbit vertex `orbit` via color coding.
pub fn estimate_gdd(
    g: &Graph,
    t: &Template,
    orbit: u8,
    cfg: &CountConfig,
) -> Result<GddHistogram, CountError> {
    let rooted = rooted_counts(g, t, orbit, cfg)?;
    Ok(GddHistogram::from_degrees(&rooted.per_vertex))
}

/// Exact graphlet degrees by enumeration (ground truth for Fig. 16): for
/// each occurrence, increments every vertex sitting in an orbit-equivalent
/// position.
pub fn exact_graphlet_degrees(g: &Graph, t: &Template, orbit: u8) -> Vec<f64> {
    use fascia_template::automorphism::rooted_automorphisms;
    use fascia_template::canon::full_mask;
    // Count homomorphism roots, then divide by the rooted automorphism
    // count, mirroring the estimator's scaling.
    let alpha_rooted = rooted_automorphisms(t, orbit, full_mask(t.size())) as f64;
    let mut homs_at = vec![0.0f64; g.num_vertices()];
    // Enumerate all homomorphisms by brute force over each occurrence's
    // automorphic images: reuse the exact enumerator, which reports each
    // occurrence once, and add the orbit multiplicity analytically: for an
    // occurrence reported with image `img`, each automorphism of T maps the
    // orbit vertex somewhere; equivalently each occurrence contributes its
    // full automorphism orbit. Simplest correct route: count homomorphisms
    // directly with a small local search constrained on the root.
    let (order, back) = root_first_order(t, orbit);
    let n = g.num_vertices();
    for v0 in 0..n {
        let mut image = vec![u32::MAX; t.size()];
        image[0] = v0 as u32;
        let mut used = vec![false; n];
        used[v0] = true;
        homs_at[v0] += extend_count(g, t, &order, &back, &mut image, &mut used, 1) as f64;
    }
    homs_at.iter().map(|&h| h / alpha_rooted).collect()
}

fn root_first_order(t: &Template, root: u8) -> (Vec<u8>, Vec<Vec<u8>>) {
    let k = t.size();
    let mut order = Vec::with_capacity(k);
    let mut seen = vec![false; k];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    seen[root as usize] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in t.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    let pos = {
        let mut p = vec![0usize; k];
        for (i, &v) in order.iter().enumerate() {
            p[v as usize] = i;
        }
        p
    };
    let back = order
        .iter()
        .map(|&v| {
            t.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| pos[u as usize] < pos[v as usize])
                .collect()
        })
        .collect();
    (order, back)
}

fn extend_count(
    g: &Graph,
    t: &Template,
    order: &[u8],
    back: &[Vec<u8>],
    image: &mut [u32],
    used: &mut [bool],
    depth: usize,
) -> u64 {
    if depth == order.len() {
        return 1;
    }
    let anchors = &back[depth];
    let pos_of = |tv: u8| order.iter().position(|&x| x == tv).unwrap();
    let anchor_img = image[pos_of(anchors[0])] as usize;
    let mut total = 0u64;
    'cand: for &cand in g.neighbors(anchor_img) {
        let c = cand as usize;
        if used[c] {
            continue;
        }
        for &other in &anchors[1..] {
            if !g.has_edge(image[pos_of(other)] as usize, c) {
                continue 'cand;
            }
        }
        image[depth] = cand;
        used[c] = true;
        total += extend_count(g, t, order, back, image, used, depth + 1);
        used[c] = false;
    }
    let _ = t;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_graph::gen::gnm;
    use fascia_template::NamedTemplate;

    #[test]
    fn histogram_basics() {
        let h = GddHistogram::from_degrees(&[0.2, 1.1, 1.4, 2.0, 2.0, 7.0]);
        // 0.2 rounds to 0 and is dropped; 1.1 and 1.4 round to 1.
        let pairs: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (2, 2), (7, 1)]);
        assert_eq!(h.support(), 3);
        assert_eq!(h.total_vertices(), 5);
    }

    #[test]
    fn self_agreement_is_one() {
        let h = GddHistogram::from_degrees(&[1.0, 2.0, 2.0, 5.0]);
        assert!((gdd_agreement(&h, &h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_score_zero() {
        let a = GddHistogram::from_degrees(&[1.0]);
        let b = GddHistogram::from_degrees(&[2.0]);
        // N_a = {1: 1}, N_b = {2: 1}; distance = sqrt(2)/sqrt(2) = 1.
        assert!(gdd_agreement(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn exact_degrees_on_star() {
        // Star graph, template P3 with orbit = middle vertex: only the hub
        // of the star can be a P3 center; it centers C(4,2) = 6 paths.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let t = Template::path(3);
        let degrees = exact_graphlet_degrees(&g, &t, 1);
        assert_eq!(degrees[0], 6.0);
        for d in &degrees[1..5] {
            assert_eq!(*d, 0.0);
        }
        // End orbit: each leaf ends 3 paths (to the 3 other leaves);
        // the hub ends none (wait: hub as an end means path hub-leaf-? but
        // leaves have degree 1) -> hub ends 0.
        let ends = exact_graphlet_degrees(&g, &t, 0);
        assert_eq!(ends[0], 0.0);
        for e in &ends[1..5] {
            assert_eq!(*e, 3.0);
        }
    }

    #[test]
    fn estimated_gdd_converges_to_exact() {
        // A sparse graph keeps graphlet degrees small and shared by many
        // vertices, which is the regime the Pržulj agreement is meant for
        // (on dense graphs every vertex owns a singleton bin and the
        // metric punishes ±1 rounding of otherwise-accurate estimates).
        let g = gnm(80, 110, 12);
        let named = NamedTemplate::U5_2;
        let t = named.template();
        let orbit = named.central_orbit().unwrap();
        let exact = exact_graphlet_degrees(&g, &t, orbit);
        let exact_hist = GddHistogram::from_degrees(&exact);
        let cfg = CountConfig {
            iterations: 3000,
            seed: 5,
            ..CountConfig::default()
        };
        let est = estimate_gdd(&g, &t, orbit, &cfg).unwrap();
        let agreement = gdd_agreement(&est, &exact_hist);
        assert!(
            agreement > 0.85,
            "agreement {agreement} too low after 3000 iterations"
        );
    }

    #[test]
    fn rooted_estimates_are_unbiased() {
        // Direct per-vertex comparison (stronger than the binned metric).
        let g = gnm(50, 140, 12);
        let named = NamedTemplate::U5_2;
        let t = named.template();
        let orbit = named.central_orbit().unwrap();
        let exact = exact_graphlet_degrees(&g, &t, orbit);
        let cfg = CountConfig {
            iterations: 2000,
            seed: 5,
            ..CountConfig::default()
        };
        let est = crate::engine::rooted_counts(&g, &t, orbit, &cfg).unwrap();
        let se: f64 = est.per_vertex.iter().sum();
        let sx: f64 = exact.iter().sum();
        assert!((se / sx - 1.0).abs() < 0.03, "sum ratio {}", se / sx);
        // Per-vertex relative error stays moderate on well-covered vertices.
        for (v, (&e, &x)) in est.per_vertex.iter().zip(&exact).enumerate() {
            if x >= 50.0 {
                let rel = (e - x).abs() / x;
                assert!(rel < 0.35, "v={v}: est {e} vs exact {x}");
            }
        }
    }

    #[test]
    fn empty_histogram_agreement() {
        let empty = GddHistogram::from_degrees(&[]);
        let h = GddHistogram::from_degrees(&[3.0]);
        // Empty normalizes to nothing; distance is 1, agreement ~ 0... but
        // self-agreement of two empties is 1 (zero distance).
        assert!((gdd_agreement(&empty, &empty) - 1.0).abs() < 1e-12);
        assert!(gdd_agreement(&empty, &h) < 0.5);
    }
}

/// Per-orbit graphlet degree estimates: one rooted count pass per
/// automorphism orbit of the template, yielding the template's full
/// "graphlet degree vector" contribution for every graph vertex.
///
/// Returns `(orbit_representative_vertex, per-vertex estimates)` in orbit
/// order. This generalizes Pržulj's 73-orbit signature to arbitrary tree
/// templates.
pub fn graphlet_degree_vectors(
    g: &Graph,
    t: &Template,
    cfg: &CountConfig,
) -> Result<Vec<(u8, Vec<f64>)>, CountError> {
    use fascia_template::automorphism::orbit_representatives;
    let reps = orbit_representatives(t);
    let mut out = Vec::with_capacity(reps.len());
    for rep in reps {
        let r = rooted_counts(g, t, rep, cfg)?;
        out.push((rep, r.per_vertex));
    }
    Ok(out)
}

#[cfg(test)]
mod gdv_tests {
    use super::*;
    use fascia_graph::gen::gnm;

    /// Sum over orbits of (orbit size x per-vertex degrees) equals
    /// (template size) x (occurrence count): every occurrence contributes
    /// each of its k vertices to exactly one orbit slot.
    #[test]
    fn gdv_orbit_sums_are_consistent() {
        let g = gnm(50, 140, 21);
        let t = Template::path(4); // orbits: ends, mids
        let cfg = CountConfig {
            iterations: 600,
            seed: 10,
            ..CountConfig::default()
        };
        let gdv = graphlet_degree_vectors(&g, &t, &cfg).unwrap();
        assert_eq!(gdv.len(), 2);
        let exact = crate::exact::count_exact(&g, &t) as f64;
        // Σ_v GD_o(v) = orbit_size(o) * occurrences, so summing over all
        // orbits gives k * occurrences (each occurrence contributes each of
        // its k vertices exactly once).
        let mut total = 0.0;
        for (_, per_vertex) in &gdv {
            total += per_vertex.iter().sum::<f64>();
        }
        let expect = t.size() as f64 * exact;
        let rel = (total - expect).abs() / expect;
        assert!(rel < 0.1, "gdv total {total} vs {expect}");
    }

    #[test]
    fn gdv_has_one_entry_per_orbit() {
        let g = gnm(30, 80, 2);
        let t = Template::star(4);
        let cfg = CountConfig {
            iterations: 20,
            seed: 3,
            ..CountConfig::default()
        };
        let gdv = graphlet_degree_vectors(&g, &t, &cfg).unwrap();
        assert_eq!(gdv.len(), 2); // hub orbit + leaf orbit
        assert!(gdv.iter().all(|(_, v)| v.len() == 30));
    }
}
