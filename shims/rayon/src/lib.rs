//! Minimal, dependency-free stand-in for the parts of `rayon` that the
//! FASCIA workspace uses.
//!
//! The build environment resolves third-party crates from a mirror that may
//! be unavailable, so the workspace vendors the surface it needs. Parallel
//! iterators over integer ranges are executed by splitting the range into
//! one contiguous chunk per available thread and running the chunks on
//! `std::thread::scope` workers; results are stitched back in index order,
//! so `collect()` is deterministic and order-preserving exactly like
//! rayon's indexed collect.
//!
//! Differences from real rayon, none of which matter to this workspace:
//! there is no work stealing (chunking is static), pools are sizes rather
//! than actual resident worker threads, and only `Range<usize>` /
//! `Range<u64>` are parallelizable sources.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "use the machine default".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations will use in this context.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Error building a thread pool (the shim cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": in this shim, a thread-count context. Workers are spawned
/// per-operation as scoped threads, so a pool holds no resident threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing all parallel
    /// iterators (and [`current_num_threads`]) on the calling thread.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The rayon prelude: parallel-iterator traits.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

pub mod iter {
    //! Parallel iterators over integer ranges.

    use super::current_num_threads;
    use std::ops::Range;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type produced.
        type Item: Send;
        /// Concrete parallel iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A parallel iterator (indexed, order-preserving).
    pub trait ParallelIterator: Sized {
        /// Item type produced.
        type Item: Send;

        /// Evaluates all items in parallel, in index order.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps each item through `f` in parallel.
        fn map<T, F>(self, f: F) -> Map<Self, F>
        where
            T: Send,
            F: Fn(Self::Item) -> T + Sync,
        {
            Map { base: self, f }
        }

        /// Maps with a per-worker scratch value built by `init` (rayon's
        /// `map_init`): `init` runs once per worker chunk, not per item.
        fn map_init<I, T, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
        where
            INIT: Fn() -> I + Sync,
            F: Fn(&mut I, Self::Item) -> T + Sync,
            T: Send,
        {
            MapInit {
                base: self,
                init,
                f,
            }
        }

        /// Collects into a container (only `Vec<Item>` is supported).
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_vec(self.drive())
        }

        /// Sums all items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.drive().into_iter().sum()
        }
    }

    /// Containers buildable from a parallel iterator.
    pub trait FromParallelIterator<T> {
        /// Builds the container from items in index order.
        fn from_par_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(items: Vec<T>) -> Self {
            items
        }
    }

    /// Parallel iterator over a `Range`.
    #[derive(Debug, Clone)]
    pub struct IterRange<T> {
        pub(crate) range: Range<T>,
    }

    macro_rules! range_impl {
        ($ty:ty) => {
            impl IntoParallelIterator for Range<$ty> {
                type Item = $ty;
                type Iter = IterRange<$ty>;
                fn into_par_iter(self) -> IterRange<$ty> {
                    IterRange { range: self }
                }
            }

            impl ParallelIterator for IterRange<$ty> {
                type Item = $ty;

                fn drive(self) -> Vec<$ty> {
                    self.range.collect()
                }
            }
        };
    }

    range_impl!(usize);
    range_impl!(u32);
    range_impl!(u64);

    /// Map adapter.
    #[derive(Debug, Clone)]
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    /// Map-with-scratch adapter.
    #[derive(Debug, Clone)]
    pub struct MapInit<B, INIT, F> {
        base: B,
        init: INIT,
        f: F,
    }

    /// Splits `0..len` into at most `current_num_threads()` contiguous
    /// chunks and runs `work` on each chunk in a scoped thread, returning
    /// per-chunk outputs in order.
    fn run_chunked<T: Send>(len: usize, work: &(dyn Fn(Range<usize>) -> Vec<T> + Sync)) -> Vec<T> {
        let threads = current_num_threads().max(1).min(len.max(1));
        if threads <= 1 || len <= 1 {
            return work(0..len);
        }
        let chunk = len.div_ceil(threads);
        let bounds: Vec<Range<usize>> = (0..threads)
            .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
            .filter(|r| !r.is_empty())
            .collect();
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .into_iter()
                .map(|r| scope.spawn(move || work(r)))
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in parts {
            out.extend(p);
        }
        out
    }

    macro_rules! map_impls {
        ($ty:ty) => {
            impl<T, F> ParallelIterator for Map<IterRange<$ty>, F>
            where
                T: Send,
                F: Fn($ty) -> T + Sync,
            {
                type Item = T;

                fn drive(self) -> Vec<T> {
                    let start = self.base.range.start;
                    let end = self.base.range.end;
                    let len = (end - start) as usize;
                    let f = &self.f;
                    run_chunked(len, &move |r: Range<usize>| {
                        r.map(|i| f(start + i as $ty)).collect()
                    })
                }
            }

            impl<I, T, INIT, F> ParallelIterator for MapInit<IterRange<$ty>, INIT, F>
            where
                T: Send,
                INIT: Fn() -> I + Sync,
                F: Fn(&mut I, $ty) -> T + Sync,
            {
                type Item = T;

                fn drive(self) -> Vec<T> {
                    let start = self.base.range.start;
                    let end = self.base.range.end;
                    let len = (end - start) as usize;
                    let init = &self.init;
                    let f = &self.f;
                    run_chunked(len, &move |r: Range<usize>| {
                        let mut scratch = init();
                        r.map(|i| f(&mut scratch, start + i as $ty)).collect()
                    })
                }
            }
        };
    }

    map_impls!(usize);
    map_impls!(u32);
    map_impls!(u64);
}

pub use iter::{IntoParallelIterator, ParallelIterator};

/// Joins two closures, potentially in parallel (sequential in this shim —
/// no caller in the workspace is join-bound).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[allow(unused_imports)]
fn _assert_range_usable(_r: Range<usize>) {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn map_sum_matches_serial() {
        let par: u128 = (0..5_000usize).into_par_iter().map(|i| i as u128).sum();
        let ser: u128 = (0..5_000u128).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn map_init_reuses_scratch_within_chunk() {
        let v: Vec<usize> = (0..1000usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i
            })
            .collect();
        assert_eq!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let outside = current_num_threads();
        let inside = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_and_single_ranges() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let v: Vec<usize> = (0..1usize).into_par_iter().map(|i| i + 7).collect();
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x");
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
