//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 that the
//! FASCIA workspace uses.
//!
//! The build environment resolves third-party crates from a mirror that may
//! be unavailable, so the workspace vendors the small API surface it needs:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via splitmix64, matching
//!   `rand 0.8` + `rand_xoshiro`'s `SmallRng::seed_from_u64` streams,
//! * [`Rng::gen_range`] over integer and float ranges (Lemire widening
//!   multiply with rejection for integers, 52-bit mantissa sampling for
//!   floats — the same algorithms as `rand 0.8`'s `UniformInt` /
//!   `UniformFloat::sample_single`),
//! * [`Rng::gen_bool`] (64-bit fixed-point Bernoulli),
//! * [`Rng::gen`] for the standard distributions used in-tree,
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates, high-to-low).
//!
//! Determinism matters more than breadth here: the engine's seeded tests
//! assert statistical tolerances that were calibrated against these exact
//! streams.

use std::ops::Range;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Byte seed for the generator.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via a splitmix64 expansion (the
    /// xoshiro authors' recommended seeding, as `rand_xoshiro` does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64_next(&mut state);
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // 64-bit fixed point comparison, as rand's Bernoulli.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// 53-bit precision in `[0, 1)` (rand's multiply-based conversion).
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// 24-bit precision in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types with a uniform range sampler.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

/// Widening multiply used by the integer rejection sampler.
trait WideningMul: Copy {
    fn wmul(self, rhs: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    #[inline]
    fn wmul(self, rhs: Self) -> (Self, Self) {
        let t = self as u64 * rhs as u64;
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMul for u64 {
    #[inline]
    fn wmul(self, rhs: Self) -> (Self, Self) {
        let t = self as u128 * rhs as u128;
        ((t >> 64) as u64, t as u64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $uty:ty, $u_large:ty, $gen:ident) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                // rand 0.8's UniformInt::sample_single: Lemire's widening
                // multiply with per-call zone computation.
                let range = high.wrapping_sub(low) as $uty as $u_large;
                let zone = if (<$uty>::MAX as u64) <= u16::MAX as u64 {
                    // Small types: compute the exact rejection zone.
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$gen() as $u_large;
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, next_u32);
uniform_int_impl!(u16, u16, u32, next_u32);
uniform_int_impl!(u32, u32, u32, next_u32);
uniform_int_impl!(u64, u64, u64, next_u64);
uniform_int_impl!(usize, usize, u64, next_u64);
uniform_int_impl!(i8, u8, u32, next_u32);
uniform_int_impl!(i16, u16, u32, next_u32);
uniform_int_impl!(i32, u32, u32, next_u32);
uniform_int_impl!(i64, u64, u64, next_u64);
uniform_int_impl!(isize, usize, u64, next_u64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8's UniformFloat::sample_single: sample a mantissa in
        // [1, 2), scale into [low, high), reject the rare res == high.
        let scale = high - low;
        loop {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_single<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        loop {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the generator behind `rand 0.8`'s 64-bit `SmallRng`.
    ///
    /// Not cryptographically secure; excellent statistical quality and
    /// speed for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // rand_xoshiro truncates to the low 32 bits.
            self.next_u64() as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; perturb it the
            // way rand_xoshiro's documentation suggests is unreachable via
            // seed_from_u64, but guard anyway.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x0000_0000_DEAD_BEEF,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices (subset of `rand::seq`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, high index to low (rand's order).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }

    /// rand's `gen_index`: 32-bit sampling when the bound permits.
    #[inline]
    fn gen_index<R: RngCore>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_bounds_all_types() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0..8);
            assert!(x < 8);
            let y = rng.gen_range(0..13usize);
            assert!(y < 13);
            let z = rng.gen_range(5..6u32);
            assert_eq!(z, 5);
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let k = 10usize;
        let n = 100_000;
        let mut hist = vec![0usize; k];
        for _ in 0..n {
            hist[rng.gen_range(0..k)] += 1;
        }
        let expect = n as f64 / k as f64;
        for &c in &hist {
            assert!((c as f64 - expect).abs() < 6.0 * expect.sqrt());
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let expect = n as f64 * 0.25;
        assert!((hits as f64 - expect).abs() < 6.0 * (expect * 0.75).sqrt());
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(13);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
