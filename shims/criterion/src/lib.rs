//! Minimal, dependency-free stand-in for the parts of `criterion` that the
//! FASCIA workspace uses.
//!
//! The build environment resolves third-party crates from a mirror that may
//! be unavailable, so the workspace vendors the surface it needs. Each
//! benchmark is timed as `sample_size` samples, where one sample runs the
//! closure enough times to exceed a minimum duration; the reported figure
//! is the median per-call time (plus min/max across samples). There is no
//! statistical analysis, plotting, or baseline storage — just honest wall
//! clock numbers on stdout, which is what the bench binaries need to be
//! runnable and comparable in this environment.
//!
//! With `FASCIA_PERF_APPEND=<path>` set, every finished benchmark also
//! appends its raw samples as a one-line `fascia-perf/1` document, so
//! criterion output feeds the same compare gate as the `fascia-perf`
//! runner in `fascia-bench`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>, // seconds per call
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples of its per-call cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single-call cost.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~20ms per sample, capped to keep suites fast.
        let per_sample =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let total = start.elapsed().as_secs_f64();
            self.samples.push(total / per_sample as f64);
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name:<48} (no measurement)");
        return;
    }
    let mut s = b.samples.clone();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let (lo, hi) = (s[0], s[s.len() - 1]);
    println!(
        "  {name:<48} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
    append_perf_record(name, &b.samples);
}

/// When `FASCIA_PERF_APPEND=<path>` is set, appends this benchmark as a
/// one-benchmark `fascia-perf/1` document on its own line, so criterion
/// benches and the `fascia-perf` runner share one schema
/// (`PerfDoc::parse` in `fascia-bench` merges such JSON-lines streams).
/// The JSON is hand-rolled here because the shim must stay dependency-
/// free; benchmark names contain only `[A-Za-z0-9_/.-]`, and samples are
/// finite positive seconds, so no escaping cases arise that the simple
/// writer below cannot handle.
fn append_perf_record(name: &str, samples: &[f64]) {
    let Some(path) = std::env::var_os("FASCIA_PERF_APPEND") else {
        return;
    };
    append_perf_record_to(std::path::Path::new(&path), name, samples);
}

fn append_perf_record_to(path: &std::path::Path, name: &str, samples: &[f64]) {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let reps: Vec<String> = samples
        .iter()
        .map(|s| {
            if s.is_finite() {
                format!("{s}")
            } else {
                "null".to_string()
            }
        })
        .collect();
    let line = format!(
        "{{\"schema\":\"fascia-perf/1\",\"benchmarks\":{{\"{escaped}\":{{\"warmup\":1,\"reps_s\":[{}]}}}}}}\n",
        reps.join(",")
    );
    use std::io::Write as _;
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion shim: cannot append to {}: {e}", path.display());
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    criterion_group!(simple_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.sample_size = 2;
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn macro_group_runs() {
        simple_group();
    }

    #[test]
    fn perf_append_emits_one_json_line_per_benchmark() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.jsonl");
        let _ = std::fs::remove_file(&path);
        append_perf_record_to(&path, "grp/bench \"a\"", &[0.5, 0.25]);
        append_perf_record_to(&path, "grp/other", &[1.0]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"schema\":\"fascia-perf/1\""));
        assert!(lines[0].contains("\\\"a\\\""));
        assert!(lines[0].contains("\"reps_s\":[0.5,0.25]"));
        assert!(lines[1].contains("\"grp/other\""));
        let _ = std::fs::remove_file(&path);
    }
}
