//! Minimal, dependency-free stand-in for the parts of `proptest` that the
//! FASCIA workspace uses.
//!
//! The build environment resolves third-party crates from a mirror that may
//! be unavailable, so the workspace vendors the surface it needs: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], and the [`proptest!`] macro.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case's seed so it can be replayed, but is not minimized. Case
//! generation is deterministic per test (seeded from the test name), so
//! failures are reproducible across runs.

use std::ops::Range;

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via 128-bit multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// Map combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Flat-map combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($ty:ty) => {
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    };
}

range_strategy!(u8);
range_strategy!(u16);
range_strategy!(u32);
range_strategy!(u64);
range_strategy!(usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` here: no
/// shrinking machinery to unwind through).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0u32..2).generate(&mut rng);
            assert!(y < 2);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::for_test("vecs");
        let s = collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = collection::vec(0u32..10, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s =
            (1usize..5).prop_flat_map(|n| collection::vec(0u32..100, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself expands and runs.
        #[test]
        fn macro_generates_cases(x in 0u64..100, v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(a in any::<u32>(), b in any::<u64>()) {
            let _ = (a, b);
            prop_assert_eq!(a as u64 & u32::MAX as u64, a as u64);
        }
    }
}
