#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; mirrors what a hosted pipeline would check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy (workspace, all targets, deny warnings) ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== cargo doc (workspace, deny warnings) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "=== cargo test ==="
cargo test -q --workspace --offline

# The workspace run above already includes these, but the resilience
# gate is called out explicitly so a failure is unmistakable: adversarial
# input must never panic, and checkpoint resume must be bit-for-bit.
echo "=== resilience & fault-injection suites ==="
cargo test -q --offline --test resilience --test fault_injection

echo "ci: all green"
