#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; mirrors what a hosted pipeline would check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy (workspace, all targets, deny warnings) ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== cargo doc (workspace, deny warnings) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "=== cargo test ==="
cargo test -q --workspace --offline

# The workspace run above already includes these, but the resilience
# gate is called out explicitly so a failure is unmistakable: adversarial
# input must never panic, and checkpoint resume must be bit-for-bit.
echo "=== resilience & fault-injection suites ==="
cargo test -q --offline --test resilience --test fault_injection

# Observability gate: a real count run with --trace must produce valid
# Perfetto-loadable JSON (parsed with the depth-capped parser, monotone
# per-tid timestamps), the heartbeat file must keep its stable shape,
# results must be bitwise identical with tracing on/off/overflowing,
# and the Prometheus rendering must match the golden file.
echo "=== tracing, heartbeat & exposition-format gates ==="
cargo test -q --offline --test tracing
cargo test -q --offline -p fascia-cli --test cli -- \
  trace_flag_writes_valid_perfetto_json \
  heartbeat_file_has_stable_shape \
  metrics_prom_emits_exposition_format \
  metrics_json_carries_run_metadata_and_trace_summary \
  trace_does_not_change_the_estimate
cargo test -q --offline -p fascia-obs --test prom_golden --test stress

# Telemetry-plane gate: the fascia-events/1 golden file must round-trip
# through the depth-capped parser, and the admin endpoint must survive
# its hardening suite (oversized lines, slow-loris, concurrent scrapes
# during a chaos soak with byte-identical replay).
echo "=== event-log & admin-endpoint gates ==="
cargo test -q --offline -p fascia-svc --test events_golden --test admin
cargo test -q --offline -p fascia-cli --test admin_e2e

# Performance gates: the fascia-perf/1 schema and Mann–Whitney compare
# rules, profiler result-identity invariants, and a 1-rep smoke of the
# pinned suite against the checked-in baseline. A single rep cannot
# support the significance test, so compare falls back to the ratio rule;
# the loose 2x threshold catches step-change regressions, not noise.
echo "=== perf schema & profiler gates ==="
cargo test -q --offline --test profiler
cargo test -q --offline -p fascia-bench --test perf

echo "=== perf smoke gate ==="
cargo build --release -q -p fascia-bench --bin perf --offline
mkdir -p results/perf
./target/release/perf run --smoke --reps 1 --warmup 1 --quiet \
  --out results/perf/smoke.json
./target/release/perf compare scripts/perf_baseline.json results/perf/smoke.json \
  --threshold 2.0

# Kernel A/B gate: both kernels run rep-interleaved in one process
# (`perf ab`), which cancels machine drift out of the ratio. Gate only
# the hash smoke cell — its vectorized margin (measured 1.5-1.7x) clears
# 1.2x with room to spare, while the naive/improved smoke margins sit
# inside VM noise (ratio-only: 5-rep smoke cells are too small for the
# significance test). Guards the vectorized kernel against silently
# degrading back to scalar speed.
echo "=== kernel speedup gate ==="
./target/release/perf ab --smoke --reps 5 --warmup 2 --filter hash --min 1.2 --quiet

# Memory-observability gate: a tiny counting run under --mem-stats must
# emit a fascia-mem/1 document (its own stdout line AND the --mem-out
# file), and `fascia report` must render the run directory to both the
# terminal and a self-contained HTML file. Validated with grep only —
# the structural checks live in the cli/core/obs test suites above.
echo "=== mem-stats & report gate ==="
cargo build -q -p fascia-cli --offline
MEMDIR=$(mktemp -d)
ESTDIR=$(mktemp -d)
ADMINDIR=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$MEMDIR" "$ESTDIR" "$ADMINDIR"
}
trap cleanup EXIT
./target/debug/fascia count circuit U5-2 --iters 2 --seed 1 \
  --parallel serial --metrics json --mem-stats \
  --mem-out "$MEMDIR/mem.json" --heartbeat "$MEMDIR/hb.json" \
  > "$MEMDIR/stdout.txt"
grep -q '"schema":"fascia-mem/1"' "$MEMDIR/stdout.txt"
grep -q '"schema":"fascia-mem/1"' "$MEMDIR/mem.json"
grep '"schema":"fascia-obs/1"' "$MEMDIR/stdout.txt" > "$MEMDIR/metrics.json"
./target/debug/fascia report "$MEMDIR" > "$MEMDIR/report.txt"
grep -q '^## Allocator' "$MEMDIR/report.txt"
grep -q '^## DP tables' "$MEMDIR/report.txt"
grep -q '<!doctype html>' "$MEMDIR/report.html"

# Estimator-observability gate: a real counting run with --est-trace must
# emit a fascia-est/1 document (its own stdout line AND the trace file),
# every JSON line on stdout must carry a known schema tag, `fascia report`
# must render the Estimator section, and — the observe-only contract —
# the final estimate must be byte-identical with the ledger absent vs.
# attached. The structural checks (strata shares, ledger bound, golden)
# live in the core/cli test suites above.
echo "=== estimator convergence gate ==="
./target/debug/fascia count circuit U5-2 --iters 20 --seed 1 \
  --parallel serial --metrics json --est-trace "$ESTDIR/est.json" \
  > "$ESTDIR/stdout.txt"
grep -q '"schema":"fascia-est/1"' "$ESTDIR/stdout.txt"
grep -q '"schema":"fascia-est/1"' "$ESTDIR/est.json"
! grep '^{' "$ESTDIR/stdout.txt" | grep -qv '"schema":"fascia-'
./target/debug/fascia report "$ESTDIR" > "$ESTDIR/report.txt"
grep -q '^## Estimator' "$ESTDIR/report.txt"
grep -q 'relative CI trajectory' "$ESTDIR/report.txt"
grep -q '<!doctype html>' "$ESTDIR/report.html"
./target/debug/fascia count circuit U5-2 --iters 20 --seed 1 \
  --parallel serial > "$ESTDIR/plain.txt"
grep '^estimate:' "$ESTDIR/stdout.txt" > "$ESTDIR/est_on.txt"
grep '^estimate:' "$ESTDIR/plain.txt" > "$ESTDIR/est_off.txt"
cmp "$ESTDIR/est_on.txt" "$ESTDIR/est_off.txt"

# Live-admin gate: a real `fascia serve` daemon with the opt-in admin
# plane on an ephemeral port, scraped with curl exactly as an operator
# would. Asserts the liveness answer, the Prometheus service series, the
# job table, and that every line the daemon wrote to the events log is a
# fascia-events/1 record.
echo "=== live admin-endpoint gate ==="
printf '{"schema":"fascia-job/1","id":"ci-admin","graph":"circuit","template":"path4","iterations":4,"seed":11}\n' \
  > "$ADMINDIR/job.jsonl"
./target/debug/fascia serve --spool "$ADMINDIR/spool" --scan-ms 50 \
  --admin-addr 127.0.0.1:0 --stdin < "$ADMINDIR/job.jsonl" \
  > "$ADMINDIR/serve.out" 2> "$ADMINDIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 1 50); do
  [ -f "$ADMINDIR/spool/admin.addr" ] && break
  sleep 0.1
done
ADMIN_ADDR=$(cat "$ADMINDIR/spool/admin.addr")
curl -sf "http://$ADMIN_ADDR/healthz" | grep -q '"status":"ok"'
for _ in $(seq 1 100); do
  [ -f "$ADMINDIR/spool/results/ci-admin.json" ] && break
  sleep 0.1
done
curl -sf "http://$ADMIN_ADDR/metrics" > "$ADMINDIR/metrics.prom"
grep -q '^svc_queue_depth' "$ADMINDIR/metrics.prom"
grep -q '^svc_jobs_completed 1' "$ADMINDIR/metrics.prom"
curl -sf "http://$ADMIN_ADDR/jobs" | grep -q '"schema":"fascia-jobs/1"'
curl -sf "http://$ADMIN_ADDR/jobs/ci-admin" | grep -q '"schema":"fascia-job-timeline/1"'
! grep -qv '"schema":"fascia-events/1"' "$ADMINDIR/spool/events/events.jsonl"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
grep -q '"schema":"fascia-svc-report/1"' "$ADMINDIR/serve.out"

# Chaos-smoke gate: a seeded soak of the resident service under injected
# worker panics, IO faults, and DP stalls. The script asserts the whole
# robustness contract — every job terminal (completed or cleanly failed
# with a typed error), zero torn/staging files, and a byte-identical
# replay of the fired event sequence under the same seed.
echo "=== service chaos-smoke gate ==="
FASCIA_SOAK_JOBS=6 FASCIA_SOAK_ITERS=6 scripts/chaos_soak.sh

echo "ci: all green"
