#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; mirrors what a hosted pipeline would check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy (workspace, all targets, deny warnings) ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== cargo doc (workspace, deny warnings) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "=== cargo test ==="
cargo test -q --workspace --offline

# The workspace run above already includes these, but the resilience
# gate is called out explicitly so a failure is unmistakable: adversarial
# input must never panic, and checkpoint resume must be bit-for-bit.
echo "=== resilience & fault-injection suites ==="
cargo test -q --offline --test resilience --test fault_injection

# Observability gate: a real count run with --trace must produce valid
# Perfetto-loadable JSON (parsed with the depth-capped parser, monotone
# per-tid timestamps), the heartbeat file must keep its stable shape,
# results must be bitwise identical with tracing on/off/overflowing,
# and the Prometheus rendering must match the golden file.
echo "=== tracing, heartbeat & exposition-format gates ==="
cargo test -q --offline --test tracing
cargo test -q --offline -p fascia-cli --test cli -- \
  trace_flag_writes_valid_perfetto_json \
  heartbeat_file_has_stable_shape \
  metrics_prom_emits_exposition_format \
  metrics_json_carries_run_metadata_and_trace_summary \
  trace_does_not_change_the_estimate
cargo test -q --offline -p fascia-obs --test prom_golden --test stress

# Performance gates: the fascia-perf/1 schema and Mann–Whitney compare
# rules, profiler result-identity invariants, and a 1-rep smoke of the
# pinned suite against the checked-in baseline. A single rep cannot
# support the significance test, so compare falls back to the ratio rule;
# the loose 2x threshold catches step-change regressions, not noise.
echo "=== perf schema & profiler gates ==="
cargo test -q --offline --test profiler
cargo test -q --offline -p fascia-bench --test perf

echo "=== perf smoke gate ==="
cargo build --release -q -p fascia-bench --bin perf --offline
mkdir -p results/perf
./target/release/perf run --smoke --reps 1 --warmup 1 --quiet \
  --out results/perf/smoke.json
./target/release/perf compare scripts/perf_baseline.json results/perf/smoke.json \
  --threshold 2.0

# Kernel A/B gate: both kernels run rep-interleaved in one process
# (`perf ab`), which cancels machine drift out of the ratio. Gate only
# the hash smoke cell — its vectorized margin (measured 1.5-1.7x) clears
# 1.2x with room to spare, while the naive/improved smoke margins sit
# inside VM noise (ratio-only: 5-rep smoke cells are too small for the
# significance test). Guards the vectorized kernel against silently
# degrading back to scalar speed.
echo "=== kernel speedup gate ==="
./target/release/perf ab --smoke --reps 5 --warmup 2 --filter hash --min 1.2 --quiet

# Memory-observability gate: a tiny counting run under --mem-stats must
# emit a fascia-mem/1 document (its own stdout line AND the --mem-out
# file), and `fascia report` must render the run directory to both the
# terminal and a self-contained HTML file. Validated with grep only —
# the structural checks live in the cli/core/obs test suites above.
echo "=== mem-stats & report gate ==="
cargo build -q -p fascia-cli --offline
MEMDIR=$(mktemp -d)
trap 'rm -rf "$MEMDIR"' EXIT
./target/debug/fascia count circuit U5-2 --iters 2 --seed 1 \
  --parallel serial --metrics json --mem-stats \
  --mem-out "$MEMDIR/mem.json" --heartbeat "$MEMDIR/hb.json" \
  > "$MEMDIR/stdout.txt"
grep -q '"schema":"fascia-mem/1"' "$MEMDIR/stdout.txt"
grep -q '"schema":"fascia-mem/1"' "$MEMDIR/mem.json"
grep '"schema":"fascia-obs/1"' "$MEMDIR/stdout.txt" > "$MEMDIR/metrics.json"
./target/debug/fascia report "$MEMDIR" > "$MEMDIR/report.txt"
grep -q '^## Allocator' "$MEMDIR/report.txt"
grep -q '^## DP tables' "$MEMDIR/report.txt"
grep -q '<!doctype html>' "$MEMDIR/report.html"

# Chaos-smoke gate: a seeded soak of the resident service under injected
# worker panics, IO faults, and DP stalls. The script asserts the whole
# robustness contract — every job terminal (completed or cleanly failed
# with a typed error), zero torn/staging files, and a byte-identical
# replay of the fired event sequence under the same seed.
echo "=== service chaos-smoke gate ==="
FASCIA_SOAK_JOBS=6 FASCIA_SOAK_ITERS=6 scripts/chaos_soak.sh

echo "ci: all green"
