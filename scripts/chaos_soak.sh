#!/usr/bin/env bash
# Seeded chaos soak of the resident counting service, plus a replay gate.
#
# Runs a batch of jobs through `fascia serve --once` under a
# deterministic fault schedule (worker panics, checkpoint/graph/result
# IO errors, DP stalls), then verifies the robustness contract:
#
#   * every submitted job reaches exactly one terminal result
#     (completed | partial | failed-with-typed-error) — no hangs,
#   * no `.tmp` staging litter (atomic writes never tear),
#   * a second run under the same seed fires a byte-identical
#     chaos event sequence and produces identical outcomes
#     (modulo wall-clock `elapsed_ms`).
#
# Tunables: FASCIA_SOAK_SEED (default 1234), FASCIA_SOAK_JOBS (12),
# FASCIA_SOAK_ITERS (10). Exit 0 = contract holds.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${FASCIA_SOAK_SEED:-1234}"
JOBS="${FASCIA_SOAK_JOBS:-12}"
ITERS="${FASCIA_SOAK_ITERS:-10}"
SCHEDULE="seed=${SEED},panic=0.08,io=0.1,stall=0.05,stall_ms=2"

cargo build -q -p fascia-cli --offline
FASCIA="./target/debug/fascia"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

submit_batch() { # $1 = spool dir
  mkdir -p "$1/jobs"
  for i in $(seq 0 $((JOBS - 1))); do
    id=$(printf 'soak-%03d' "$i")
    printf '{"schema":"fascia-job/1","id":"%s","graph":"circuit","template":"path4","iterations":%d,"seed":%d}' \
      "$id" "$ITERS" $((9000 + i)) > "$1/jobs/$id.json"
  done
}

run_soak() { # $1 = spool dir
  submit_batch "$1"
  FASCIA_CHAOS="$SCHEDULE" "$FASCIA" serve --once --spool "$1" \
    --backoff-base-ms 5 --backoff-cap-ms 40 --poll-ms 5 2> "$1/stderr.log"
}

echo "=== chaos soak: $JOBS jobs, schedule $SCHEDULE ==="
run_soak "$WORK/a"

echo "--- verifying terminal results ---"
for i in $(seq 0 $((JOBS - 1))); do
  id=$(printf 'soak-%03d' "$i")
  result="$WORK/a/results/$id.json"
  [ -f "$result" ] || { echo "FAIL: $id has no terminal result"; exit 1; }
  grep -q '"schema":"fascia-job-result/1"' "$result" \
    || { echo "FAIL: $id result is not a fascia-job-result/1 document"; exit 1; }
  grep -Eq '"status":"(completed|partial|failed)"' "$result" \
    || { echo "FAIL: $id has no terminal status"; exit 1; }
  if grep -q '"status":"failed"' "$result"; then
    grep -q '"kind":"' "$result" \
      || { echo "FAIL: $id failed without a typed error"; exit 1; }
  fi
done

echo "--- verifying no staging litter, schedule actually fired ---"
litter=$(find "$WORK/a" -name '*.tmp' | wc -l)
[ "$litter" -eq 0 ] || { echo "FAIL: $litter .tmp file(s) left behind"; exit 1; }
[ -s "$WORK/a/chaos.events" ] || { echo "FAIL: chaos schedule fired no events"; exit 1; }

echo "--- replaying seed $SEED ---"
run_soak "$WORK/b"
diff "$WORK/a/chaos.events" "$WORK/b/chaos.events" \
  || { echo "FAIL: replay fired a different event sequence"; exit 1; }
for dir in a b; do
  for f in "$WORK/$dir"/results/*.json; do
    sed 's/"elapsed_ms":[0-9]*//' "$f"; echo
  done > "$WORK/$dir.normalized"
done
diff "$WORK/a.normalized" "$WORK/b.normalized" \
  || { echo "FAIL: replay produced different outcomes"; exit 1; }

events=$(wc -l < "$WORK/a/chaos.events")
echo "chaos soak: all $JOBS jobs terminal, $events event(s) fired, replay byte-identical"
