#!/usr/bin/env bash
# Regenerates every table and figure of the FASCIA paper evaluation.
# Results land in results/<name>.txt; pass --full for paper-scale graphs.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(
  table1_networks
  fig02_templates
  fig03_unlabeled_times
  fig04_labeled_times
  fig05_motif_times
  fig06_memory_portland
  fig07_memory_road
  fig08_inner_scaling
  fig09_inner_vs_outer
  cmp_naive_moda
  fig10_error_enron
  fig11_error_hpylori
  fig12_motif_counts
  fig13_ppi_profiles
  fig14_social_profiles
  fig15_gdd
  fig16_gdd_agreement
  ext_distributed
  ext_adaptive
)
cargo build --release -p fascia-bench
for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  if cargo run --release -q -p fascia-bench --bin "$bin" -- "$@" \
      > "results/$bin.txt" 2> "results/$bin.log"; then
    tail -5 "results/$bin.txt"
  else
    echo "FAILED: see results/$bin.log"
  fi
done

# Engine metrics (fascia-obs/1 JSON) for representative workloads: one
# document per run under results/metrics/, via the CLI's --metrics json.
mkdir -p results/metrics
cargo build --release -p fascia-cli
METRIC_RUNS=(
  "portland U7-2 --iters 5"
  "enron U7-2 --iters 10"
  "road U10-1 --iters 5 --table hash"
  "gnp U5-2 --iters 10 --table improved"
)
for run in "${METRIC_RUNS[@]}"; do
  # shellcheck disable=SC2086
  set -- $run
  name="metrics_$1_$2"
  echo "=== $name ==="
  if cargo run --release -q -p fascia-cli -- count "$@" --metrics json \
      2> "results/metrics/$name.log" | grep '"schema":"fascia-obs/1"' \
      > "results/metrics/$name.json"; then
    wc -c < "results/metrics/$name.json" | xargs echo "  metrics bytes:"
  else
    echo "FAILED: see results/metrics/$name.log"
  fi
done

# Machine-readable perf documents (fascia-perf/1) under results/perf/:
# the pinned suite via the perf runner, plus the criterion benches
# appending their raw samples to a JSON-lines stream through
# FASCIA_PERF_APPEND. Either archive diffs against any other with
# `perf compare`.
mkdir -p results/perf
echo "=== perf suite ==="
if cargo run --release -q -p fascia-bench --bin perf -- run \
    --out "results/perf/BENCH_$(date -u +%F).json" 2> results/perf/perf.log; then
  tail -3 results/perf/perf.log
else
  echo "FAILED: see results/perf/perf.log"
fi
echo "=== criterion benches (perf records) ==="
rm -f results/perf/criterion.jsonl
if FASCIA_PERF_APPEND="$PWD/results/perf/criterion.jsonl" \
    cargo bench -q -p fascia-bench --offline \
    > results/perf/criterion.txt 2> results/perf/criterion.log; then
  wc -l < results/perf/criterion.jsonl | xargs echo "  criterion perf records:"
else
  echo "FAILED: see results/perf/criterion.log"
fi

# Memory observability (fascia-mem/1) under results/mem/: representative
# runs with the counting allocator and access telemetry live, each in its
# own directory with the unified report rendered next to the raw
# documents (mem.json, hb.json, metrics.json, report.txt, report.html).
mkdir -p results/mem
MEM_RUNS=(
  "portland U7-2 --iters 5"
  "road U10-1 --iters 5 --table hash"
)
for run in "${MEM_RUNS[@]}"; do
  # shellcheck disable=SC2086
  set -- $run
  dir="results/mem/$1_$2"
  echo "=== mem $1 $2 ==="
  mkdir -p "$dir"
  if cargo run --release -q -p fascia-cli -- count "$@" --metrics json \
      --mem-stats --mem-out "$dir/mem.json" --heartbeat "$dir/hb.json" \
      2> "$dir/run.log" | grep '"schema":"fascia-obs/1"' \
      > "$dir/metrics.json"; then
    cargo run --release -q -p fascia-cli -- report "$dir" \
      > "$dir/report.txt" 2>> "$dir/run.log" \
      && echo "  report: $dir/report.html"
  else
    echo "FAILED: see $dir/run.log"
  fi
done

# Adaptive convergence trajectory: ext_adaptive emits its reports as
# JSON lines on stderr; keep the trajectory series under results/metrics/
# so convergence behaviour is diffable across runs.
if [ -f results/ext_adaptive.log ]; then
  grep '^\[json\] Ext: adaptive convergence trajectory' results/ext_adaptive.log \
    | sed 's/^\[json\] Ext: adaptive convergence trajectory //' \
    > results/metrics/adaptive_trajectory.json || true
  wc -c < results/metrics/adaptive_trajectory.json | xargs echo "  trajectory bytes:"
fi
echo "done; see results/ and results/metrics/"
