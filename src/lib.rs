//! # FASCIA-rs
//!
//! A Rust reproduction of **FASCIA** — *Fast Approximate Subgraph Counting
//! and Enumeration* (G. M. Slota and K. Madduri, ICPP 2013): shared-memory
//! parallel approximate counting of non-induced tree-template occurrences
//! in large graphs via the Alon–Yuster–Zwick color-coding technique.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! ```
//! use fascia::prelude::*;
//!
//! // A small ring graph and the 3-vertex path template.
//! let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
//! let t = Template::path(3);
//! let cfg = CountConfig { iterations: 500, ..CountConfig::default() };
//! let result = count_template(&g, &t, &cfg).unwrap();
//! // The ring contains exactly 6 paths on 3 vertices.
//! assert!((result.estimate - 6.0).abs() < 1.5);
//! ```
//!
//! Crate map:
//!
//! * [`combin`] — combinatorial number system color-set indexing and
//!   precomputed split tables,
//! * [`graph`] — CSR graphs, generators, Table I dataset registry,
//! * [`template`] — templates, canonical forms, automorphisms, free-tree
//!   generation, partition trees,
//! * [`table`] — the three dynamic-table layouts,
//! * [`core`] — the counting engine, exact baselines, motif finding,
//!   graphlet degree distributions, adaptive iteration control
//!   ([`core::stats`]).

pub use fascia_combin as combin;
pub use fascia_core as core;
pub use fascia_graph as graph;
pub use fascia_obs as obs;
pub use fascia_table as table;
pub use fascia_template as template;

/// Most-used items in one import.
pub mod prelude {
    pub use fascia_combin::{colorful_probability, iterations_for};
    pub use fascia_core::directed::{count_directed, count_exact_directed};
    pub use fascia_core::distsim::{count_distributed, DistConfig, DistResult, PartitionScheme};
    pub use fascia_core::engine::{
        count_template, count_template_labeled, rooted_counts, CountConfig, CountError,
        CountResult, RootedResult,
    };
    pub use fascia_core::exact::{count_exact, count_exact_labeled, enumerate_embeddings};
    pub use fascia_core::gdd::{estimate_gdd, gdd_agreement, GddHistogram};
    pub use fascia_core::kernel::KernelKind;
    pub use fascia_core::motifs::{motif_profile, MotifProfile};
    pub use fascia_core::parallel::{with_threads, ParallelMode};
    pub use fascia_core::progress::{Progress, ProgressConfig, ProgressSnapshot};
    pub use fascia_core::resilience::{
        atomic_write, CancelToken, Checkpoint, CheckpointConfig, CheckpointError, FaultInjection,
        Json, StopCause,
    };
    pub use fascia_core::sample::sample_embeddings;
    pub use fascia_core::stats::{count_until_converged, EstimateStats, StopRule, Welford};
    pub use fascia_graph::datasets::scale_from_env;
    pub use fascia_graph::digraph::DiGraph;
    pub use fascia_graph::{random_labels, Dataset, Graph};
    pub use fascia_obs::{Metrics, Profiler, Tracer};
    pub use fascia_table::TableKind;
    pub use fascia_template::directed::DiTemplate;
    pub use fascia_template::{NamedTemplate, PartitionStrategy, PartitionTree, Template};
}
